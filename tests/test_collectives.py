"""Tests for collective schedules and executors: the ring Allreduce of the
paper plus the schedule zoo (recursive-doubling / halving-doubling /
allgather / reduce-scatter / alltoall), each checked bitwise against the
NumPy schedule oracle on every backend and on multiple topologies, with
exactly-once trigger monitors armed on the GPU-TN runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (SCHEDULE_BUILDERS, ring_allreduce_schedule,
                               run_collective, run_ring_allreduce)
from repro.collectives.algorithms import (
    halving_doubling_allreduce_schedule,
    recursive_doubling_allreduce_schedule, ring_allgather_schedule,
    ring_reduce_scatter_schedule)
from repro.collectives.engine import CollectiveExperiment
from repro.collectives.ring import allreduce_reference
from repro.collectives.schedule import OpKind
from repro.config import default_config
from repro.runtime import Observers
from repro.validate import attach_monitors

ZOO_SCHEDULES = ("recursive-doubling", "halving-doubling", "allgather",
                 "reduce-scatter", "alltoall")
POW2_ONLY = {"recursive-doubling", "halving-doubling"}


class TestScheduleStructure:
    def test_round_count(self):
        s = ring_allreduce_schedule(0, 8)
        assert s.n_rounds == 14  # 2 * (P - 1)

    def test_each_round_sends_and_recvs(self):
        s = ring_allreduce_schedule(2, 5)
        for rnd in s.rounds:
            kinds = [op.kind for op in rnd]
            assert OpKind.SEND in kinds and OpKind.RECV in kinds

    def test_reduce_only_in_first_phase(self):
        s = ring_allreduce_schedule(1, 4)
        for i, rnd in enumerate(s.rounds):
            has_reduce = any(op.kind is OpKind.REDUCE for op in rnd)
            assert has_reduce == (i < 3)

    def test_ring_neighbors(self):
        s = ring_allreduce_schedule(3, 4)
        for rnd in s.rounds:
            for op in rnd:
                if op.kind is OpKind.SEND:
                    assert op.peer == 0   # right of rank 3 in a 4-ring
                elif op.kind is OpKind.RECV:
                    assert op.peer == 2

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_schedule(0, 1)
        with pytest.raises(ValueError):
            ring_allreduce_schedule(5, 4)

    @settings(max_examples=30, deadline=None)
    @given(n_ranks=st.integers(min_value=2, max_value=16))
    def test_property_every_chunk_fully_reduced_and_distributed(self, n_ranks):
        """Across all ranks' schedules: each chunk is sent exactly 2(P-1)
        times in total, each rank reduces P-1 distinct chunks, and every
        rank receives every chunk it doesn't compute."""
        schedules = [ring_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
        total_sends = sum(len(s.sends()) for s in schedules)
        assert total_sends == n_ranks * 2 * (n_ranks - 1)
        for s in schedules:
            reduced = [op.chunk for rnd in s.rounds for op in rnd
                       if op.kind is OpKind.REDUCE]
            assert len(set(reduced)) == n_ranks - 1
            received = {op.chunk for rnd in s.rounds for op in rnd
                        if op.kind is OpKind.RECV}
            assert len(received) == n_ranks  # touches every chunk index

    @settings(max_examples=20, deadline=None)
    @given(n_ranks=st.integers(min_value=2, max_value=12))
    def test_property_send_matches_peer_recv(self, n_ranks):
        """What rank r sends in round k is exactly what rank r+1 expects
        to receive in round k."""
        schedules = [ring_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
        for r, s in enumerate(schedules):
            peer = schedules[(r + 1) % n_ranks]
            for k, rnd in enumerate(s.rounds):
                send = next(op for op in rnd if op.kind is OpKind.SEND)
                recv = next(op for op in peer.rounds[k]
                            if op.kind is OpKind.RECV)
                assert send.chunk == recv.chunk


class TestReference:
    def test_reference_matches_float64_sum_closely(self):
        rng = np.random.default_rng(0)
        vecs = [rng.random(64, dtype=np.float32) for _ in range(4)]
        ref = allreduce_reference(vecs, 4)
        exact = np.sum(np.stack(vecs).astype(np.float64), axis=0)
        assert np.allclose(ref, exact, rtol=1e-5)


class TestExecutors:
    @pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
    def test_bitwise_correct(self, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=4, nbytes=64 * 1024)
        assert r.correct

    @pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
    def test_no_memory_hazards(self, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=3, nbytes=48 * 1024)
        assert r.memory_hazards == 0

    def test_two_nodes_minimum(self):
        r = run_ring_allreduce(strategy="gputn", n_nodes=2, nbytes=32 * 1024)
        assert r.correct

    def test_ragged_payload_padded(self):
        # 100 KB over 3 nodes does not divide; the runner pads.
        r = run_ring_allreduce(strategy="cpu", n_nodes=3, nbytes=100_000)
        assert r.correct
        assert r.nbytes % (3 * 4) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            run_ring_allreduce(strategy="rdma2000")

    @settings(max_examples=6, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=6),
        kbytes=st.sampled_from([16, 48, 96]),
        strategy=st.sampled_from(["hdn", "gputn"]),
    )
    def test_property_any_shape_correct(self, n_nodes, kbytes, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=n_nodes,
                               nbytes=kbytes * 1024)
        assert r.correct and r.memory_hazards == 0


class TestFigure10Shape:
    """The paper's Figure 10 claims as assertions (reduced sweep)."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.apps.allreduce_bench import strong_scaling_study

        return strong_scaling_study(default_config(),
                                    node_counts=(2, 8, 16, 24, 32),
                                    nbytes=8 * 1024 * 1024)

    def test_gpu_strategies_beat_cpu_at_small_node_counts(self, study):
        for s in ("hdn", "gds", "gputn"):
            assert study.speedup_vs_cpu(s)[0] > 1.0, s

    def test_hdn_crosses_below_cpu_near_24_nodes(self, study):
        crossover = study.crossover_node_count("hdn")
        assert crossover is not None and 16 <= crossover <= 32

    def test_gds_and_gputn_never_cross(self, study):
        assert study.crossover_node_count("gds") is None
        assert study.crossover_node_count("gputn") is None

    def test_gputn_beats_hdn_at_scale(self, study):
        at32 = {s: study.speedup_vs_cpu(s)[-1] for s in ("hdn", "gds", "gputn")}
        assert at32["gputn"] > at32["gds"] > at32["hdn"]

    def test_hdn_declines_monotonically(self, study):
        sp = study.speedup_vs_cpu("hdn")
        assert all(a >= b for a, b in zip(sp, sp[1:]))

    def test_cpu_busy_time_lower_for_gputn_than_hdn(self):
        """Table 1's CPU-overhead column, quantified: GPU-TN keeps the
        CPU off the critical path."""
        hdn = run_ring_allreduce(strategy="hdn", n_nodes=4, nbytes=1024 * 1024)
        tn = run_ring_allreduce(strategy="gputn", n_nodes=4, nbytes=1024 * 1024)
        assert tn.cpu_busy_ns < hdn.cpu_busy_ns


# --------------------------------------------------------------------------
# The schedule zoo
# --------------------------------------------------------------------------

def zoo_counts(schedule):
    """Node counts a schedule supports, within the test budget."""
    return (2, 4, 8, 16)  # all zoo schedules accept powers of two


class TestZooScheduleStructure:
    def test_registry_is_complete(self):
        assert set(SCHEDULE_BUILDERS) == {"ring", *ZOO_SCHEDULES}

    @pytest.mark.parametrize("builder", [
        recursive_doubling_allreduce_schedule,
        halving_doubling_allreduce_schedule,
    ])
    def test_pow2_builders_reject_other_counts(self, builder):
        for bad in (0, 1, 3, 6, 12):
            with pytest.raises(ValueError):
                builder(0, bad)
        with pytest.raises(ValueError):
            builder(4, 4)  # rank out of range

    def test_round_counts(self):
        assert recursive_doubling_allreduce_schedule(0, 8).n_rounds == 3
        assert halving_doubling_allreduce_schedule(0, 8).n_rounds == 6
        assert ring_allgather_schedule(0, 8).n_rounds == 7
        assert ring_reduce_scatter_schedule(0, 8).n_rounds == 7

    def test_reduce_scatter_result_chunk(self):
        for n in (2, 4, 8):
            for r in range(n):
                s = ring_reduce_scatter_schedule(r, n)
                assert s.result_chunk == (r + 1) % n

    @pytest.mark.parametrize("name", ["allgather", "alltoall"])
    def test_data_movement_schedules_never_reduce(self, name):
        for r in range(8):
            s = SCHEDULE_BUILDERS[name](r, 8)
            assert not any(op.kind is OpKind.REDUCE
                           for rnd in s.rounds for op in rnd)

    @pytest.mark.parametrize("name", sorted(SCHEDULE_BUILDERS))
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_property_sends_match_peer_recvs(self, name, n):
        """What rank r sends to p in round k, p expects from r in round k
        -- the pairing contract every executor leans on."""
        schedules = [SCHEDULE_BUILDERS[name](r, n) for r in range(n)]
        for r, s in enumerate(schedules):
            for k, rnd in enumerate(s.rounds):
                send = next(op for op in rnd if op.kind is OpKind.SEND)
                peer_rnd = schedules[send.peer].rounds[k]
                recv = next(op for op in peer_rnd if op.kind is OpKind.RECV)
                assert recv.peer == r
                assert recv.nchunks == send.nchunks


class TestZooOracle:
    """Acceptance: every schedule, bitwise-correct vs the NumPy oracle, on
    >=3 node counts x 3 backends x >=2 topologies."""

    NBYTES = 16 * 1024

    @pytest.mark.parametrize("strategy", ("hdn", "gds", "gputn"))
    @pytest.mark.parametrize("n_nodes", (2, 4, 8, 16))
    @pytest.mark.parametrize("schedule", ZOO_SCHEDULES)
    def test_star_bitwise_correct(self, schedule, n_nodes, strategy):
        r = run_collective(schedule=schedule, strategy=strategy,
                           n_nodes=n_nodes, nbytes=self.NBYTES)
        assert r.correct and r.memory_hazards == 0

    @pytest.mark.parametrize("schedule", ZOO_SCHEDULES)
    def test_cpu_backend_matches_oracle(self, schedule):
        r = run_collective(schedule=schedule, strategy="cpu", n_nodes=8,
                           nbytes=self.NBYTES)
        assert r.correct and r.memory_hazards == 0

    @pytest.mark.parametrize("strategy", ("hdn", "gds", "gputn"))
    @pytest.mark.parametrize("topology", ("fat-tree", "torus:4x4",
                                          "dragonfly"))
    @pytest.mark.parametrize("schedule", ZOO_SCHEDULES)
    def test_multiswitch_topologies_bitwise_correct(self, schedule, topology,
                                                    strategy):
        r = run_collective(schedule=schedule, strategy=strategy,
                           topology=topology, n_nodes=16, nbytes=self.NBYTES)
        assert r.correct and r.memory_hazards == 0
        assert r.topology == topology

    def test_ragged_payload_padded(self):
        r = run_collective(schedule="alltoall", strategy="gputn", n_nodes=8,
                           nbytes=10_000)  # not divisible by 8 chunks
        assert r.correct and r.nbytes % (8 * 4) == 0

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            run_collective(schedule="double-binary-tree")
        with pytest.raises(KeyError):
            run_collective(strategy="rdma2000")


class TestZooExactlyOnce:
    """GPU-TN zoo runs with the full validation monitor suite armed: every
    trigger entry fires exactly once, fabric order and transport acceptance
    invariants hold, and the result still matches the oracle."""

    @pytest.mark.parametrize("topology", ("star", "fat-tree"))
    @pytest.mark.parametrize("schedule", ZOO_SCHEDULES)
    def test_monitored_gputn_run_is_clean(self, schedule, topology):
        monitors = []
        execution = CollectiveExperiment().execute(
            {"schedule": schedule, "strategy": "gputn", "topology": topology,
             "n_nodes": 8, "nbytes": 8 * 1024, "seed": 11},
            observers=Observers(
                instruments=(lambda c: monitors.extend(attach_monitors(c)),)),
        )
        assert monitors  # the suite actually armed
        for monitor in monitors:  # raises InvariantViolation on failure
            monitor.finalize()
        assert execution.raw.correct
        exactly_once = [m for m in monitors
                        if m.invariant == "trigger-exactly-once"]
        assert exactly_once
        # The GPU-TN run exercised real triggered ops: the monitor saw
        # every entry fire exactly once (n_rounds per rank).
        fires = [n for _, _, n in exactly_once[0]._entries.values()]
        assert fires and all(n == 1 for n in fires)
        assert len(fires) == 8 * execution.raw.n_rounds
