"""Unit tests for the Table 2 configuration (repro.config)."""

import dataclasses

import pytest

from repro.config import (
    GB,
    KB,
    MB,
    US,
    CacheConfig,
    KernelLatencyConfig,
    NetworkConfig,
    SystemConfig,
    default_config,
)


class TestUnits:
    def test_unit_constants(self):
        assert US == 1_000
        assert KB == 1024 and MB == 1024 * KB and GB == 1024 * MB


class TestCacheConfig:
    def test_valid_geometry(self):
        c = CacheConfig(64 * KB, 2, 2)
        assert c.n_sets == 64 * KB // (64 * 2)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 2, 2)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 2)


class TestDefaults:
    """The defaults must reproduce the paper's Table 2 exactly."""

    def test_cpu_block(self):
        cfg = default_config()
        assert cfg.cpu.issue_width == 8
        assert cfg.cpu.freq_ghz == 4.0
        assert cfg.cpu.cores == 8
        assert cfg.cpu.l1d.size_bytes == 64 * KB and cfg.cpu.l1d.assoc == 2
        assert cfg.cpu.l2.size_bytes == 2 * MB and cfg.cpu.l2.assoc == 8
        assert cfg.cpu.l3.size_bytes == 16 * MB and cfg.cpu.l3.assoc == 16
        assert cfg.memory.channels == 8 and cfg.memory.freq_mhz == 2133

    def test_gpu_block(self):
        cfg = default_config()
        assert cfg.gpu.freq_ghz == 1.0
        assert cfg.gpu.compute_units == 24
        assert cfg.gpu.l1d.size_bytes == 16 * KB and cfg.gpu.l1d.latency_cycles == 25
        assert cfg.gpu.l1i.size_bytes == 32 * KB and cfg.gpu.l1i.assoc == 8
        assert cfg.gpu.l2.size_bytes == 768 * KB and cfg.gpu.l2.latency_cycles == 150

    def test_kernel_latencies(self):
        cfg = default_config()
        assert cfg.kernel.launch_ns == 1500
        assert cfg.kernel.teardown_ns == 1500

    def test_network_block(self):
        cfg = default_config()
        assert cfg.network.link_latency_ns == 100
        assert cfg.network.switch_latency_ns == 100
        assert cfg.network.bandwidth_gbps == 100.0
        assert cfg.network.topology == "star"

    def test_describe_matches_paper_text(self):
        table = default_config().describe()
        assert table["CPU and Memory Configuration"]["Type"] == "8 Wide OOO, 4GHz, 8 cores"
        assert table["GPU Configuration"]["Type"] == "1 GHz, 24 Compute Units"
        assert table["GPU Configuration"]["Kernel Latencies"] == "1.5us launch / 1.5us teardown"
        assert table["Network Configuration"]["Latency"] == "100ns Link, 100ns Switch"
        assert table["Network Configuration"]["Bandwidth"] == "100Gbps"
        assert table["Network Configuration"]["Topology"] == "Star (single switch)"


class TestNetworkMath:
    def test_bytes_per_ns(self):
        assert NetworkConfig().bytes_per_ns == pytest.approx(12.5)

    def test_serialization_scales_linearly(self):
        net = NetworkConfig()
        assert net.serialization_ns(0) == 0
        assert net.serialization_ns(125) == 10
        assert net.serialization_ns(8 * MB) == pytest.approx(8 * MB / 12.5, abs=1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().serialization_ns(-1)


class TestImmutability:
    def test_config_is_frozen(self):
        cfg = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.seed = 1  # type: ignore[misc]

    def test_with_replaces_sections(self):
        cfg = default_config()
        fast = cfg.with_(kernel=KernelLatencyConfig(launch_ns=100, teardown_ns=100))
        assert fast.kernel.launch_ns == 100
        assert cfg.kernel.launch_ns == 1500  # original untouched

    def test_negative_kernel_latency_rejected(self):
        with pytest.raises(ValueError):
            KernelLatencyConfig(launch_ns=-1)


def test_cycles_to_ns():
    cfg = default_config()
    assert cfg.cpu.cycles_to_ns(4) == 1     # 4 GHz
    assert cfg.gpu.cycles_to_ns(150) == 150  # 1 GHz
