"""The congestion study (repro.apps.congestion, ``repro congestion``).

Experiment-level coverage of the ISSUE-8 acceptance grid: single points
pass both correctness monitors at zero and positive load, the campaign
aggregates by case, axis spellings map onto configs, and the CLI rejects
bad topology specs with exit code 2 (satellite: no opaque tracebacks).
"""

import pytest

from repro.apps.congestion import (CongestionExperiment, _queue_config,
                                   _reliability_config,
                                   run_congestion_campaign)

FAST = {"messages": 4, "bg_horizon_ns": 20_000}


def run_point(**overrides):
    params = dict(FAST, **overrides)
    return CongestionExperiment().execute(params).record


class TestAxisMapping:
    def test_disciplines_map_to_queue_configs(self):
        assert _queue_config("none") is None
        assert _queue_config("drop-tail").discipline == "drop-tail"
        red = _queue_config("red")
        assert red.discipline == "red" and not red.ecn
        assert _queue_config("red-ecn").ecn
        with pytest.raises(ValueError, match="discipline"):
            _queue_config("codel")

    def test_transports_map_to_reliability_configs(self):
        assert _reliability_config("go-back-n").mode == "go-back-n"
        sr = _reliability_config("selective-repeat")
        assert sr.mode == "selective-repeat" and sr.pacing
        with pytest.raises(ValueError, match="transport"):
            _reliability_config("quic")


class TestSinglePoint:
    def test_zero_load_point_is_clean(self):
        record = run_point(load=0.0, strategy="gputn")
        m = record.metrics
        assert m["ok"] and not m["violations"] and not m["gave_up"]
        assert m["delivered"] == 4
        assert m["p50_latency_ns"] > 0 and m["p99_latency_ns"] > 0
        assert m["background"] is None  # load=0 arms no traffic
        assert m["queue"]["enqueued"] > 0  # foreground transits the tree

    def test_loaded_point_sees_background_and_stays_clean(self):
        record = run_point(load=0.5, strategy="gputn",
                           discipline="red-ecn",
                           transport="selective-repeat")
        m = record.metrics
        assert m["ok"], m["violations"]
        assert m["background"]["delivered"] > 0
        assert m["queue"]["max_depth_bytes"] > 0

    def test_monitor_violation_fails_point_not_sweep(self):
        # Sanity: ok flips on under-delivery, not only on violations.
        record = run_point(load=0.0, messages=4)
        assert record.metrics["requested"] == 4
        assert record.metrics["ok"] == (record.metrics["delivered"] == 4)

    @pytest.mark.parametrize("strategy", ["hdn", "gds", "gputn"])
    def test_all_strategies_complete(self, strategy):
        assert run_point(load=0.2, strategy=strategy).metrics["ok"]

    def test_points_are_deterministic(self):
        a = run_point(load=0.5, transport="selective-repeat")
        b = run_point(load=0.5, transport="selective-repeat")
        assert a.metrics == b.metrics


class TestCampaign:
    def test_small_grid_aggregates_by_case(self):
        report = run_congestion_campaign(
            loads=[0.5], disciplines=["drop-tail"],
            transports=["selective-repeat"], strategies=["gds", "gputn"],
            messages=4, bg_horizon_ns=20_000)
        assert report.ok and report.total == 2
        cases = report.by_case()
        assert list(cases) == [(0.5, "drop-tail", "selective-repeat")]
        per_strategy = cases[0.5, "drop-tail", "selective-repeat"]
        assert set(per_strategy) == {"gds", "gputn"}
        doc = report.to_dict()
        assert doc["ok"] and doc["total"] == 2
        assert doc["cases"][0]["strategies"]["gputn"]["delivered"] == 4

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="empty campaign"):
            run_congestion_campaign(loads=[])


class TestCli:
    def test_bad_topology_spec_exits_2_with_grammar(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["congestion", "--topology", "fat-tree:k=abc"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "not an integer" in err and "fat-tree[:k=K]" in err

    def test_unknown_topology_exits_2_with_grammar(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["congestion", "--topology", "hypercube"])
        assert exc.value.code == 2
        assert "dragonfly[:a=A,g=G,p=P]" in capsys.readouterr().err

    def test_topology_node_mismatch_exits_2(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["congestion", "--topology", "torus:5x5", "--nodes", "16"])
        assert exc.value.code == 2

    def test_single_point_cli_runs_clean(self, capsys):
        from repro.__main__ import main

        rc = main(["congestion", "--loads", "0.2", "--disciplines",
                   "drop-tail", "--transports", "go-back-n", "--strategies",
                   "gputn", "--messages", "2", "--bg-horizon-ns", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1/1 points clean" in out
