"""Tests for the deep-learning projection (repro.apps.deeplearning)."""

import numpy as np
import pytest

from repro.apps.deeplearning import (
    WORKLOADS,
    WorkloadSpec,
    generate_trace,
    project_deep_learning,
    table3_rows,
)
from repro.config import KB, default_config


class TestTable3Fidelity:
    """The specs must reproduce the paper's Table 3 numbers."""

    def test_workload_set(self):
        assert set(WORKLOADS) == {"alexnet", "an4-lstm", "cifar",
                                  "large-synth", "mnist-conv", "mnist-hidden"}

    @pytest.mark.parametrize("key,blocked,reductions", [
        ("alexnet", 0.14, 4672),
        ("an4-lstm", 0.50, 131192),
        ("cifar", 0.04, 939820),
        ("large-synth", 0.28, 52800),
        ("mnist-conv", 0.12, 900000),
        ("mnist-hidden", 0.29, 900000),
    ])
    def test_blocked_and_reductions(self, key, blocked, reductions):
        spec = WORKLOADS[key]
        assert spec.pct_blocked == blocked
        assert spec.n_reductions == reductions

    def test_table3_rows_render(self):
        rows = table3_rows()
        assert ("AN4 LSTM", "Speech", "50%", "131192") in rows
        assert len(rows) == 6

    def test_profiles_normalized(self):
        for spec in WORKLOADS.values():
            assert sum(w for _, w in spec.size_profile) == pytest.approx(1.0)


class TestSpecValidation:
    def test_bad_blocked_rejected(self):
        with pytest.raises(ValueError, match="blocked"):
            WorkloadSpec("x", "d", 1.5, 10, ((KB, 1.0),))

    def test_bad_reductions_rejected(self):
        with pytest.raises(ValueError, match="reduction"):
            WorkloadSpec("x", "d", 0.5, 0, ((KB, 1.0),))

    def test_unnormalized_profile_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            WorkloadSpec("x", "d", 0.5, 10, ((KB, 0.4), (2 * KB, 0.4)))


class TestTraceGeneration:
    def test_trace_sizes_come_from_profile(self):
        trace = generate_trace("cifar", n_calls=500)
        allowed = {s for s, _ in WORKLOADS["cifar"].size_profile}
        assert set(np.unique(trace)) <= allowed

    def test_trace_deterministic(self):
        a = generate_trace("alexnet", n_calls=100, seed=3)
        b = generate_trace("alexnet", n_calls=100, seed=3)
        assert (a == b).all()

    def test_trace_weights_roughly_respected(self):
        trace = generate_trace("an4-lstm", n_calls=4000)
        small = (trace == 64 * KB).mean()
        assert 0.3 < small < 0.5  # profile weight 0.40


class TestProjection:
    """Figure 11's qualitative claims (subset of workloads to stay fast)."""

    @pytest.fixture(scope="class")
    def projections(self):
        return project_deep_learning(default_config(),
                                     workloads=("an4-lstm", "cifar"),
                                     n_nodes=4)

    def test_cpu_baseline_is_one(self, projections):
        for proj in projections.values():
            assert proj.speedup["cpu"] == pytest.approx(1.0)

    def test_gputn_fastest_everywhere(self, projections):
        for key, proj in projections.items():
            assert proj.speedup["gputn"] >= proj.speedup["gds"], key
            assert proj.speedup["gputn"] >= proj.speedup["hdn"], key

    def test_an4_gains_most_cifar_least(self, projections):
        """Paper: 'up to ~20% over HDN ... in AN4 LSTM', 'little
        improvement as in the CIFAR workload'."""
        an4 = projections["an4-lstm"].speedup_over("gputn", "hdn")
        cifar = projections["cifar"].speedup_over("gputn", "hdn")
        assert an4 > cifar
        assert cifar < 1.10
        assert an4 > 1.10

    def test_blocked_fraction_caps_speedup(self, projections):
        """Amdahl: speedup <= 1 / (1 - B)."""
        for key, proj in projections.items():
            cap = 1.0 / (1.0 - WORKLOADS[key].pct_blocked)
            for s, v in proj.speedup.items():
                assert v <= cap + 1e-9, (key, s)

    def test_allreduce_times_positive(self, projections):
        for proj in projections.values():
            for v in proj.allreduce_ns.values():
                assert v > 0
