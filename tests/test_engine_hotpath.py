"""Tests for the engine hot-path optimizations: call_later + event
pooling, batched run() determinism, and the run_until_event reentrancy
guard (regression)."""

import random

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.engine import _POOL_MAX, PRIORITY_NORMAL, PRIORITY_URGENT


class TestCallLater:
    def test_runs_callback_with_args(self):
        sim = Simulator()
        seen = []
        sim.call_later(5, seen.append, "x")
        sim.run()
        assert seen == ["x"] and sim.now == 5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-1, lambda: None)

    def test_priority_orders_same_tick(self):
        sim = Simulator()
        order = []
        sim.call_later(10, order.append, "normal")
        sim.call_later(10, order.append, "high", priority=PRIORITY_URGENT)
        sim.run()
        assert order == ["high", "normal"]

    def test_interleaves_with_schedule_in_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "a")
        sim.call_later(10, order.append, "b")
        sim.schedule(10, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_recycled_through_pool(self):
        sim = Simulator()
        for _ in range(10):
            sim.call_later(1, lambda: None)
        sim.run()
        # All ten callback events returned to the freelist and at most
        # one object was ever allocated per concurrently pending slot.
        assert 1 <= len(sim._pool) <= 10

    def test_pool_is_bounded(self):
        sim = Simulator()
        for _ in range(_POOL_MAX + 50):
            sim.call_later(0, lambda: None)
        sim.run()
        assert len(sim._pool) <= _POOL_MAX

    def test_reentrant_call_later_from_callback(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append("outer")
            sim.call_later(3, seen.append, "inner")

        sim.call_later(1, outer)
        sim.run()
        assert seen == ["outer", "inner"] and sim.now == 4

    def test_events_processed_counts_all_pops(self):
        sim = Simulator()
        for i in range(7):
            sim.call_later(i, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestRunDeterminism:
    """run()'s batched drain must pop the exact sequence repeated step()
    would -- the ordering contract golden fixtures depend on."""

    @staticmethod
    def _seeded_workload(sim, seed):
        rng = random.Random(seed)
        sig = []
        sim.add_step_probe(
            lambda t, prio, tie, seq, ev: sig.append((t, prio, tie, seq)))

        def chain(depth):
            if depth > 0:
                for _ in range(rng.randint(1, 3)):
                    sim.call_later(rng.randint(0, 4), chain, depth - 1,
                                   priority=rng.choice(
                                       (PRIORITY_URGENT, PRIORITY_NORMAL,
                                        PRIORITY_NORMAL)))

        for _ in range(20):
            sim.call_later(rng.randint(0, 10), chain, 3)
        return sig

    @pytest.mark.parametrize("seed", [0, 1, 2, 17])
    def test_run_matches_stepping(self, seed):
        sim_run = Simulator()
        sig_run = self._seeded_workload(sim_run, seed)
        sim_run.run()

        sim_step = Simulator()
        sig_step = self._seeded_workload(sim_step, seed)
        while sim_step.peek() is not None:
            sim_step.step()

        assert sig_run == sig_step
        assert sim_run.now == sim_step.now

    @pytest.mark.parametrize("seed", [3, 29])
    def test_run_until_matches_stepping(self, seed):
        sim_run = Simulator()
        sig_run = self._seeded_workload(sim_run, seed)
        sim_run.run(until=8)

        sim_step = Simulator()
        sig_step = self._seeded_workload(sim_step, seed)
        while sim_step.peek() is not None and sim_step.peek() <= 8:
            sim_step.step()

        assert sig_run == sig_step
        assert sim_run.now == 8

    def test_probe_added_mid_run_is_honored(self):
        sim = Simulator()
        late = []

        def attach():
            sim.add_step_probe(
                lambda t, prio, tie, seq, ev: late.append(t))

        sim.call_later(1, attach)
        sim.call_later(5, lambda: None)
        sim.run()
        assert late == [5]


class TestRunUntilEventReentrancy:
    def test_nested_run_until_event_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            inner = sim.timeout(1)
            try:
                sim.run_until_event(inner)
            except SimulationError as exc:
                errors.append(exc)

        sim.call_later(1, nested)
        sim.run_until_event(sim.timeout(10))
        assert len(errors) == 1
        assert "not reentrant" in str(errors[0])

    def test_run_until_event_inside_run_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run_until_event(sim.timeout(1))
            except SimulationError as exc:
                errors.append(exc)

        sim.call_later(1, nested)
        sim.run()
        assert len(errors) == 1

    def test_guard_released_after_completion(self):
        sim = Simulator()
        sim.run_until_event(sim.timeout(5))
        sim.run_until_event(sim.timeout(5))
        assert sim.now == 10
