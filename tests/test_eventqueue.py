"""Tests for the completion event queue (repro.nic.eventqueue)."""

import numpy as np
import pytest

from repro.nic.eventqueue import EventKind, EventQueue, EventQueueOverflow

from conftest import build_nic_testbed


def attach(tb, node="n1", depth=1024):
    return EventQueue(tb.nics[node], depth=depth).attach()


class TestArrivalEvents:
    def test_put_arrival_recorded(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), wire_tag=9)
        tb.sim.run()
        record = eq.poll()
        assert record is not None
        assert record.kind is EventKind.PUT_ARRIVED
        assert record.nbytes == 64 and record.wire_tag == 9
        assert record.src == "n0"
        assert eq.poll() is None

    def test_send_arrival_recorded(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 32)
        dst = tb.alloc_registered("n1", 32)
        tb.nics["n1"].post_recv(3, dst.addr(), 32)
        tb.nics["n0"].post_put(src.addr(), 32, "n1", None, wire_tag=3,
                               kind="send")
        tb.sim.run()
        assert eq.poll().kind is EventKind.RECV_MATCHED

    def test_events_in_arrival_order(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 16)
        dst = tb.alloc_registered("n1", 16)
        for tag in (1, 2, 3):
            tb.nics["n0"].post_put(src.addr(), 16, "n1", dst.addr(),
                                   wire_tag=tag)
        tb.sim.run()
        assert [eq.poll().wire_tag for _ in range(3)] == [1, 2, 3]


class TestLocalCompletionEvents:
    def test_tracked_put_reports_send_complete(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n0")
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        eq.track_put(h)
        tb.sim.run()
        kinds = [r.kind for r in eq.drain()]
        assert EventKind.SEND_COMPLETE in kinds


class TestWaitSemantics:
    def test_wait_blocks_until_event(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)

        def consumer():
            record = yield eq.wait()
            return (tb.sim.now, record.kind)

        p = tb.sim.spawn(consumer())
        tb.sim.schedule(10_000, lambda: tb.nics["n0"].post_put(
            src.addr(), 8, "n1", dst.addr()))
        t, kind = tb.sim.run_until_event(p)
        assert t > 10_000 and kind is EventKind.PUT_ARRIVED

    def test_wait_returns_queued_immediately(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        ev = eq.wait()
        assert ev.triggered


class TestOverflow:
    def test_overflow_surfaces_to_consumer_not_delivery(self, nic_testbed):
        """The NIC keeps delivering past a full ring; the *consumer* gets
        PTL_EQ_DROPPED (once) after draining the surviving backlog."""
        tb = nic_testbed
        eq = attach(tb, "n1", depth=2)
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        for _ in range(3):
            tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()  # must NOT raise into the delivery path
        assert eq.dropped == 1
        assert eq.poll() is not None and eq.poll() is not None
        with pytest.raises(EventQueueOverflow) as exc:
            eq.poll()
        assert exc.value.node == "n1" and exc.value.dropped == 1
        # one notification only; afterwards the queue is usable again
        assert eq.poll() is None
        tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        assert eq.poll().kind is EventKind.PUT_ARRIVED

    def test_consumer_process_not_hung_by_overflow(self, nic_testbed):
        """Regression: a consumer that drains the backlog then waits for
        the dropped record used to park forever; it now sees the failure
        and can finish."""
        tb = nic_testbed
        eq = attach(tb, "n1", depth=2)
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        for _ in range(3):
            tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()

        def consumer():
            got = 0
            while True:
                try:
                    yield eq.wait()
                except EventQueueOverflow:
                    return got
                got += 1

        p = tb.sim.spawn(consumer())
        got = tb.sim.run_until_event(p)
        assert got == 2 and eq.dropped == 1

    def test_wait_after_overflow_fails_once_then_recovers(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1", depth=1)
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        for _ in range(2):
            tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        assert eq.dropped == 1
        assert eq.drain()  # the surviving record
        ev = eq.wait()
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, EventQueueOverflow)
        # the next wait parks normally
        ev2 = eq.wait()
        assert not ev2.triggered

    def test_drain_after_overflow_returns_backlog(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1", depth=2)
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        for _ in range(4):
            tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        backlog = eq.drain()
        assert len(backlog) == 2 and eq.dropped == 2
        with pytest.raises(EventQueueOverflow):
            eq.poll()

    def test_waiter_wake_order_is_fifo(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        woken = []

        def consumer(label):
            yield eq.wait()
            woken.append(label)

        for label in ("a", "b", "c"):
            tb.sim.spawn(consumer(label))
        for _ in range(3):
            tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        assert woken == ["a", "b", "c"]

    def test_bad_depth_rejected(self, nic_testbed):
        with pytest.raises(ValueError):
            EventQueue(nic_testbed.nics["n0"], depth=0)

    def test_double_attach_rejected(self, nic_testbed):
        eq = attach(nic_testbed, "n0")
        with pytest.raises(RuntimeError, match="already attached"):
            eq.attach()


class TestCounts:
    def test_counts_summary(self, nic_testbed):
        tb = nic_testbed
        eq = attach(tb, "n1")
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.nics["n0"].post_put(src.addr(), 8, "n1", dst.addr())
        tb.sim.run()
        assert eq.counts() == {EventKind.PUT_ARRIVED: 2}
        assert len(eq) == 2
