"""The public API facade: blessed names on ``repro``, lazy loading,
deep-import compatibility, and the ``repro.api`` ``__all__`` audit."""

import importlib

import pytest

import repro


class TestFacade:
    def test_every_blessed_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_dir_includes_lazy_names(self):
        listing = dir(repro)
        for name in ("Cluster", "Experiment", "GpuTnEndpoint",
                     "attach_metrics", "run_bench"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nonsense'"):
            repro.nonsense

    @pytest.mark.parametrize("name, module", [
        ("Cluster", "repro.cluster"),
        ("Experiment", "repro.runtime"),
        ("Observers", "repro.runtime"),
        ("RunRecord", "repro.runtime"),
        ("Sweep", "repro.runtime"),
        ("FaultPlan", "repro.faults"),
        ("GpuTnEndpoint", "repro.api"),
        ("attach_metrics", "repro.metrics"),
        ("MetricsRegistry", "repro.metrics"),
        ("discrete_gpu_config", "repro.presets"),
        ("run_bench", "repro.bench"),
    ])
    def test_facade_is_same_object_as_deep_import(self, name, module):
        # The facade re-exports; it must never fork an implementation.
        assert getattr(repro, name) is getattr(
            importlib.import_module(module), name)

    def test_default_config_eagerly_importable(self):
        from repro import SystemConfig, default_config

        assert isinstance(default_config(), SystemConfig)

    def test_facade_quickstart_shape(self):
        # The README quickstart, end to end at smoke size.
        from repro import Cluster, GpuTnEndpoint, default_config

        cluster = Cluster(n_nodes=2, config=default_config())
        ep = GpuTnEndpoint(cluster[0])
        assert ep.node is cluster[0]


class TestApiAll:
    def test_api_all_resolves_and_is_sorted(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None, name
        assert list(api.__all__) == sorted(set(api.__all__))

    def test_shmem_exports_audited(self):
        import repro.api as api
        from repro.api.shmem import ShmemContext, shmem_barrier_all

        assert api.ShmemContext is ShmemContext
        assert api.shmem_barrier_all is shmem_barrier_all
