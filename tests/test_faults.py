"""Tests for the fault-injection subsystem (repro.faults) end to end:
case derivation, campaigns, golden-fixture safety, the reliable-delivery
monitor, the degraded-mode study, and topology immutability."""

import dataclasses

import pytest

from repro.apps.degraded import DegradedExperiment
from repro.apps.microbench import MicrobenchExperiment
from repro.config import FaultConfig
from repro.faults import (
    FAULT_WORKLOADS,
    FaultsExperiment,
    fault_case,
    run_faults_campaign,
)
from repro.validate import InvariantViolation, ReliableDeliveryMonitor


class TestFaultCase:
    def test_same_seed_same_case(self):
        for workload in FAULT_WORKLOADS:
            assert fault_case(workload, 7) == fault_case(workload, 7)

    def test_seeds_spread_scenarios(self):
        cases = [fault_case("microbench", s) for s in range(16)]
        assert len({c.faults.drop_prob for c in cases}) > 1
        assert len({c.inner_params["strategy"] for c in cases}) > 1

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            fault_case("nope", 0)


class TestGoldenSafety:
    def test_unarmed_plan_keeps_records_byte_identical(self):
        params = {"strategy": "gputn", "nbytes": 64}
        plain = MicrobenchExperiment().run(params)
        armed = MicrobenchExperiment().execute(
            params,
            observers=lambda cluster: cluster.attach_faults(FaultConfig()),
        ).record
        assert plain.to_json() == armed.to_json()
        assert "transport" not in plain.to_json()

    def test_transport_counters_serialize_only_when_armed(self):
        rec = FaultsExperiment().run({"workload": "microbench", "seed": 0})
        assert rec.transport  # reliability armed => counters present
        assert '"transport"' in rec.to_json()


class TestCampaign:
    def test_smoke_campaign_clean(self):
        report = run_faults_campaign(workloads=("microbench",), seeds=4)
        assert report.ok and report.total == 4
        assert report.by_workload() == {"microbench": (4, 4)}

    def test_parallel_campaign_byte_identical_to_serial(self):
        kw = dict(workloads=("microbench",), seeds=4)
        serial = run_faults_campaign(jobs=1, **kw)
        parallel = run_faults_campaign(jobs=2, **kw)
        assert ([r.to_json() for r in serial.records]
                == [r.to_json() for r in parallel.records])

    def test_gds_allreduce_survives_drop_bursts(self):
        # Regression for the ring executor's doorbell-ordering race: a
        # retransmit burst let the host race ahead and ring a later
        # round's doorbell past queued earlier ones (campaign seed 3:
        # allreduce/gds under 2% drop).
        rec = FaultsExperiment().run({"workload": "allreduce", "seed": 3})
        assert rec.metrics["inner_params"]["strategy"] == "gds"
        assert rec.metrics["faults"]["drop_prob"] == pytest.approx(0.02)
        assert rec.transport.get("retransmits", 0) > 0  # loss actually hit
        assert rec.metrics["app_ok"] and rec.metrics["ok"]

    def test_report_dict_shape(self):
        report = run_faults_campaign(workloads=("microbench",), seeds=2)
        doc = report.to_dict()
        assert doc["ok"] and doc["total"] == 2
        assert {c["seed"] for c in doc["cases"]} == {0, 1}


class TestReliableDeliveryMonitor:
    def test_gap_acceptance_violates(self):
        monitor = ReliableDeliveryMonitor()
        monitor._observe("n1", "accept", "n0", 0, 100)
        with pytest.raises(InvariantViolation) as exc:
            monitor._observe("n1", "accept", "n0", 2, 200)
        assert exc.value.invariant == "reliable-delivery"

    def test_duplicate_acceptance_violates(self):
        monitor = ReliableDeliveryMonitor()
        monitor._observe("n1", "accept", "n0", 0, 100)
        with pytest.raises(InvariantViolation):
            monitor._observe("n1", "accept", "n0", 0, 150)

    def test_incomplete_delivery_caught_at_finalize(self):
        monitor = ReliableDeliveryMonitor()
        monitor._observe("n0", "tx", "n1", 1, 100)
        monitor._observe("n1", "accept", "n0", 0, 150)
        with pytest.raises(InvariantViolation):
            monitor.finalize()

    def test_dead_flow_excused_from_completeness(self):
        monitor = ReliableDeliveryMonitor()
        monitor._observe("n0", "tx", "n1", 1, 100)
        monitor._observe("n1", "accept", "n0", 0, 150)
        monitor._observe("n0", "give-up", "n1", 1, 500)
        monitor.finalize()  # no violation: the sender declared it dead


class TestDegradedStudy:
    def test_lossless_point_delivers_everything(self):
        rec = DegradedExperiment().run({"messages": 8})
        m = rec.metrics
        assert m["delivered"] == 8 and not m["gave_up"]
        assert m["p99_latency_ns"] >= m["p50_latency_ns"] > 0
        assert m["goodput_bytes_per_us"] > 0

    def test_loss_costs_goodput_and_tail(self):
        clean = DegradedExperiment().run({"strategy": "gds", "messages": 64})
        lossy = DegradedExperiment().run(
            {"strategy": "gds", "messages": 64, "loss": 0.05})
        assert lossy.transport.get("fault_drops", 0) > 0
        assert lossy.metrics["p99_latency_ns"] > clean.metrics["p99_latency_ns"]
        assert (lossy.metrics["goodput_bytes_per_us"]
                < clean.metrics["goodput_bytes_per_us"])

    def test_total_loss_gives_up_structurally(self):
        rec = DegradedExperiment().run({"messages": 4, "loss": 1.0})
        m = rec.metrics
        assert m["gave_up"] and m["delivered"] == 0
        assert rec.transport.get("give_ups", 0) >= 1


class TestTopologyFrozen:
    def test_graph_topology_rejects_mutation(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_edge("a", "sw")
        g.add_edge("sw", "b")
        from repro.net.topology import GraphTopology

        topo = GraphTopology(g, ["a", "b"])
        first = topo.path_latency_ns("a", "b")
        with pytest.raises(nx.NetworkXError):
            topo.graph.add_edge("a", "b")  # frozen: no shortcut injection
        g.add_edge("a", "b", latency_ns=1)  # caller's copy stays theirs
        assert topo.path_latency_ns("a", "b") == first
