"""Direct tests of the point-to-point flows (repro.strategies.flows)."""

import numpy as np
import pytest

from repro.apps.microbench import run_microbenchmark
from repro.config import default_config


@pytest.fixture(scope="module")
def results():
    cfg = default_config()
    return {s: run_microbenchmark(cfg, s) for s in ("cpu", "hdn", "gds", "gputn")}


class TestPostTiming:
    """WHEN the network operation is posted is the heart of Figure 3."""

    def test_hdn_posts_after_kernel(self, results):
        r = results["hdn"]
        assert r.initiator.network_posted > r.initiator.kernel_finished

    def test_gds_posts_before_kernel_starts(self, results):
        r = results["gds"]
        assert r.initiator.network_posted < r.initiator.kernel_started

    def test_gputn_registers_before_kernel_starts(self, results):
        r = results["gputn"]
        assert r.initiator.network_posted < r.initiator.kernel_started

    def test_cpu_has_no_kernel(self, results):
        r = results["cpu"]
        assert r.initiator.kernel_started is None
        assert r.initiator.network_posted is not None


class TestLocalCompletion:
    def test_local_completion_recorded_for_all(self, results):
        for key, r in results.items():
            assert r.initiator.local_complete is not None, key

    def test_local_completion_before_remote_for_small_messages(self, results):
        # 64 B serializes in ~5 ns; local completion (egress end + flag
        # write) always precedes target-side observation.
        for key in ("gds", "gputn"):
            r = results[key]
            assert r.initiator.local_complete <= r.target_completion_ns, key


class TestSendBufferReuse:
    def test_reuse_after_local_completion_is_safe(self):
        """DESIGN.md invariant 7: once the local completion fires, the
        send buffer may be overwritten without corrupting the payload
        already on the wire."""
        from repro.cluster import Cluster
        from repro.memory import Agent

        cluster = Cluster(n_nodes=2)
        a, b = cluster[0], cluster[1]
        src = a.host.alloc(1 << 16)
        dst = b.host.alloc(1 << 16)
        src.view(np.uint8)[:] = 1
        a.mem.record_write(0, Agent.CPU, src)

        def driver():
            h = a.nic.post_put(src.addr(), 1 << 16, b.name, dst.addr())
            yield h.local
            # Buffer is ours again: scribble over it.
            src.view(np.uint8)[:] = 99
            a.mem.record_write(cluster.sim.now, Agent.CPU, src)
            yield h.delivered

        p = cluster.spawn(driver())
        cluster.sim.run_until_event(p)
        # The target sees the original payload, not the scribble.
        assert (dst.view(np.uint8) == 1).all()
        assert cluster.total_hazards() == 0
