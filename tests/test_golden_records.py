"""Golden-record regression tests for the paper's headline exhibits.

Each fixture under ``tests/golden/`` is a canonical
:class:`~repro.runtime.record.RunRecord` (spans stripped) pinning one
simulated data point: Figure 8's microbenchmark latency decomposition,
a Figure 9 Jacobi point and Figure 10's 8-node / 8 MiB ring Allreduce.
A drift in any metric, parameter default or config fingerprint fails
here with a field-level diff.

To regenerate after an *intended* timing-model change::

    PYTHONPATH=src python tests/regen_golden.py
"""

import json
import pathlib

import pytest

from repro.runtime.record import RunRecord

from regen_golden import GOLDEN_DIR, GOLDEN_POINTS, _experiment

_NAMES = sorted(GOLDEN_POINTS)


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; run "
                    "`PYTHONPATH=src python tests/regen_golden.py`")
    return json.loads(path.read_text(encoding="utf-8"))


def _fresh(name: str) -> dict:
    kind, params = GOLDEN_POINTS[name]
    record = _experiment(kind).run(params=params)
    record.spans = ()
    return json.loads(record.to_json())


def _diff(golden: dict, fresh: dict) -> list:
    lines = []
    for key in sorted(set(golden) | set(fresh)):
        if key == "code_version":  # releases bump this; metrics must not move
            continue
        if golden.get(key) != fresh.get(key):
            lines.append(f"  {key}: golden={golden.get(key)!r} "
                         f"fresh={fresh.get(key)!r}")
    return lines


@pytest.mark.parametrize("name", _NAMES)
def test_golden_record_matches(name):
    golden, fresh = _load(name), _fresh(name)
    delta = _diff(golden, fresh)
    assert not delta, (
        f"golden record {name!r} drifted (regenerate only if the change "
        "is intended):\n" + "\n".join(delta))


def test_fixtures_cover_every_golden_point():
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(GOLDEN_POINTS), (
        "tests/golden/ out of sync with regen_golden.GOLDEN_POINTS")


def test_figure8_headline_scale():
    """The pinned Figure 8 numbers are the paper's: GPU-TN ~2.71 us beats
    GDS ~3.76 us beats HDN ~4.21 us (+-15% each)."""
    norm = {s: _load(f"microbench-{s}")["metrics"]
            ["normalized_target_completion_ns"]
            for s in ("gputn", "gds", "hdn")}
    assert norm["gputn"] < norm["gds"] < norm["hdn"]
    for strategy, paper_ns in (("gputn", 2710), ("gds", 3760), ("hdn", 4210)):
        assert abs(norm[strategy] - paper_ns) / paper_ns < 0.15, (
            strategy, norm[strategy], paper_ns)


def test_figure10_headline_order():
    """8-node 8 MiB Allreduce: GPU-TN completes ahead of the CPU and HDN
    paths, and all three fixtures agree on the verified-correct flag."""
    totals = {}
    for strategy in ("gputn", "cpu", "hdn"):
        doc = _load(f"allreduce-{strategy}")
        assert doc["metrics"]["correct"] is True, strategy
        totals[strategy] = doc["metrics"]["total_ns"]
    assert totals["gputn"] < min(totals["cpu"], totals["hdn"])


def test_fixture_roundtrips_as_runrecord():
    for name in _NAMES:
        record = RunRecord.from_json((GOLDEN_DIR / f"{name}.json").read_text())
        assert record.metrics, name
