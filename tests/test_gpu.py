"""Unit tests for the GPU model (repro.gpu)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import default_config
from repro.gpu import FIGURE1_GPUS, ConstantLaunchModel, QueueDepthLaunchModel
from repro.gpu.kernel import KernelDescriptor


def empty_kernel(ctx):
    return
    yield  # pragma: no cover - makes this a generator


def make_node():
    cluster = Cluster(n_nodes=2)
    return cluster, cluster[0]


class TestLaunchModels:
    def test_constant_model_matches_table2(self):
        cfg = default_config()
        m = ConstantLaunchModel.from_config(cfg.kernel)
        assert m.launch_ns(1) == 1500
        assert m.teardown_ns(999) == 1500
        assert m.round_trip_ns(4) == 3000

    def test_queue_depth_model_monotone_decreasing(self):
        m = FIGURE1_GPUS["GPU 1"]
        depths = [1, 4, 16, 64, 256]
        lats = [m.per_kernel_ns(d) for d in depths]
        assert all(a > b for a, b in zip(lats, lats[1:]))

    def test_figure1_envelope(self):
        """Paper: 3-20 us depending on GPU and depth; best case 3-4 us."""
        for m in FIGURE1_GPUS.values():
            assert 3_000 <= m.per_kernel_ns(256) <= 4_500
            assert m.per_kernel_ns(1) <= 21_000
        assert FIGURE1_GPUS["GPU 1"].per_kernel_ns(1) >= 18_000

    def test_launch_plus_teardown_sum(self):
        m = QueueDepthLaunchModel("x", floor_ns=3000, ramp_ns=1000)
        for d in (1, 7, 100):
            assert m.launch_ns(d) + m.teardown_ns(d) == m.per_kernel_ns(d)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            ConstantLaunchModel().launch_ns(0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            QueueDepthLaunchModel("bad", floor_ns=0, ramp_ns=1)


class TestKernelDescriptor:
    def test_defaults(self):
        d = KernelDescriptor(fn=empty_kernel, n_workgroups=4)
        assert d.name == "empty_kernel" and d.wg_size == 256

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            KernelDescriptor(fn=empty_kernel, n_workgroups=0)
        with pytest.raises(ValueError):
            KernelDescriptor(fn=empty_kernel, n_workgroups=1, wg_size=0)


class TestKernelExecution:
    def test_empty_kernel_takes_launch_plus_teardown(self):
        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=1))
        cluster.sim.run_until_event(inst.finished)
        assert cluster.sim.now == 3000  # 1.5us + 1.5us, zero work

    def test_started_fires_after_launch_latency(self):
        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=1))
        assert cluster.sim.run_until_event(inst.started) == 1500

    def test_compute_time_charged(self):
        def busy(ctx):
            yield ctx.compute(5000)

        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=busy, n_workgroups=1))
        cluster.sim.run_until_event(inst.finished)
        assert cluster.sim.now == 3000 + 5000

    def test_workgroups_run_in_parallel_up_to_cu_count(self):
        def busy(ctx):
            yield ctx.compute(1000)

        cluster, node = make_node()
        ncu = cluster.config.gpu.compute_units
        # 2x CUs worth of work-groups -> two waves.
        inst = node.gpu.launch(KernelDescriptor(fn=busy, n_workgroups=2 * ncu))
        cluster.sim.run_until_event(inst.finished)
        assert cluster.sim.now == 3000 + 2000

    def test_kernels_serialize_on_one_queue(self):
        cluster, node = make_node()
        i1 = node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=1))
        i2 = node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=1))
        cluster.sim.run_until_event(i2.finished)
        assert i1.finished.value == 3000
        assert i2.finished.value == 6000

    def test_kernel_args_accessible(self):
        seen = {}

        def probe(ctx):
            seen["x"] = ctx.arg("x")
            seen["wg"] = ctx.wg_id
            return
            yield

        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=probe, n_workgroups=1,
                                                args={"x": 42}))
        cluster.sim.run_until_event(inst.finished)
        assert seen == {"x": 42, "wg": 0}

    def test_missing_arg_is_helpful(self):
        def probe(ctx):
            ctx.arg("nope")
            return
            yield

        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=probe, n_workgroups=1))
        with pytest.raises(KeyError, match="no argument 'nope'"):
            cluster.sim.run_until_event(inst.finished)

    def test_persistent_kernel_occupancy_guard(self):
        cluster, node = make_node()
        ncu = cluster.config.gpu.compute_units
        with pytest.raises(ValueError, match="deadlock"):
            node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=ncu + 1,
                                             args={"persistent": True}))

    def test_workgroup_data_write_lands(self):
        def writer(ctx):
            buf = ctx.arg("buf")
            ctx.write(buf, np.full(16, ctx.wg_id + 1, dtype=np.uint8),
                      offset=ctx.wg_id * 16)
            yield ctx.compute(10)

        cluster, node = make_node()
        buf = node.host.alloc(64, "out")
        inst = node.gpu.launch(KernelDescriptor(fn=writer, n_workgroups=4,
                                                args={"buf": buf}))
        cluster.sim.run_until_event(inst.finished)
        data = buf.view(np.uint8)
        for wg in range(4):
            assert (data[wg * 16:(wg + 1) * 16] == wg + 1).all()


class TestGpuTriggerFromKernel:
    def test_trigger_reaches_nic(self):
        def trig(ctx):
            yield ctx.fence_release_system()
            yield ctx.store_trigger(5)

        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=trig, n_workgroups=1))
        cluster.run()
        assert node.nic.stats["trigger_writes"] == 1
        entry = node.nic.trigger_list.entry(5)
        assert entry is not None and entry.counter == 1

    def test_intra_kernel_trigger_happens_before_kernel_end(self):
        """The defining property of GPU-TN (Figure 3): the NIC sees the
        trigger while the kernel is still executing."""
        def trig_then_work(ctx):
            yield ctx.fence_release_system()
            yield ctx.store_trigger(1)
            yield ctx.compute(50_000)  # long tail of additional work

        cluster, node = make_node()
        inst = node.gpu.launch(KernelDescriptor(fn=trig_then_work, n_workgroups=1))
        cluster.run()
        trig_event = cluster.tracer.first("trigger-store", node=node.name)
        assert trig_event is not None
        assert trig_event.time < inst.finished.value

    def test_poll_flag_sees_nic_write(self):
        def poller(ctx):
            flag = ctx.arg("flag")
            value = yield from ctx.poll_flag(flag, at_least=1)
            ctx.desc.args["seen"] = value

        cluster, node = make_node()
        flag = node.host.alloc(4, "flag")
        desc = KernelDescriptor(fn=poller, n_workgroups=1, args={"flag": flag})
        inst = node.gpu.launch(desc)

        def nic_writes_flag():
            flag.view(np.uint32)[0] = 1
            from repro.memory import Agent
            node.mem.record_write(cluster.sim.now, Agent.NIC, flag)

        cluster.sim.schedule(10_000, nic_writes_flag)
        cluster.sim.run_until_event(inst.finished)
        assert desc.args["seen"] == 1
        assert cluster.sim.now >= 10_000
        assert node.mem.hazard_count() == 0  # acquire polling is clean

    def test_doorbell_command_rings_after_kernel(self):
        cluster, node = make_node()
        src = node.host.alloc(64)
        dst = cluster[1].host.alloc(64)
        h = node.nic.post_put(src.addr(), 64, cluster[1].name, dst.addr(),
                              deferred=True)
        inst = node.gpu.launch(KernelDescriptor(fn=empty_kernel, n_workgroups=1))
        cmd = node.gpu.enqueue_doorbell(h)
        cluster.run()
        assert cmd.rung.value >= inst.finished.value
        assert h.delivered.triggered
