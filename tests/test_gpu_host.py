"""Tests for the GPU Host Networking extension (repro.strategies.gpu_host).

The paper discusses this class qualitatively (§5.1.1): intra-kernel
latency without kernel boundaries, but a dedicated CPU helper thread in
the critical path.  These tests pin that behaviour quantitatively.
"""

import pytest

from repro.apps.microbench import run_microbenchmark
from repro.cluster import Cluster
from repro.config import default_config
from repro.strategies.gpu_host import GpuHostService, _Request


@pytest.fixture(scope="module")
def results():
    cfg = default_config()
    return {s: run_microbenchmark(cfg, s)
            for s in ("gputn", "gds", "hdn", "gpu-host")}


class TestMicrobenchPlacement:
    def test_payload_delivered(self, results):
        assert results["gpu-host"].payload_ok
        assert results["gpu-host"].memory_hazards == 0

    def test_slower_than_gputn(self, results):
        """Paper: 'GPU-TN can provide the same performance without
        requiring dedicated polling threads' -- the polling/service hop
        costs latency."""
        assert (results["gpu-host"].normalized_target_completion_ns
                > results["gputn"].normalized_target_completion_ns)

    def test_faster_than_kernel_boundary_strategies(self, results):
        """Intra-kernel initiation still beats waiting for the kernel."""
        assert (results["gpu-host"].normalized_target_completion_ns
                < results["gds"].normalized_target_completion_ns)
        assert (results["gpu-host"].normalized_target_completion_ns
                < results["hdn"].normalized_target_completion_ns)

    def test_intra_kernel_delivery(self, results):
        r = results["gpu-host"]
        assert r.target_completion_ns < r.initiator.kernel_finished

    def test_helper_thread_cost_reported(self, results):
        detail = results["gpu-host"].initiator.detail
        assert detail["helper_thread_busy_ns"] > 0


class TestService:
    def test_dedicated_core_burns_wall_time(self):
        cluster = Cluster(n_nodes=2)
        service = GpuHostService(cluster[0])
        assert service.dedicated_core_ns(1_000_000) == 1_000_000

    def test_requests_serviced_in_order(self):
        cluster = Cluster(n_nodes=2)
        node, peer = cluster[0], cluster[1]
        service = GpuHostService(node)
        bufs = [node.host.alloc(32) for _ in range(3)]
        dsts = [peer.host.alloc(32) for _ in range(3)]
        reqs = [_Request(buf=b, nbytes=32, target=peer.name, wire_tag=i,
                         remote_addr=d.addr())
                for i, (b, d) in enumerate(zip(bufs, dsts))]
        for r in reqs:
            service.submit_from_gpu(r)
        cluster.run()
        assert service.serviced == reqs
        assert all(r.handle is not None for r in reqs)

    def test_stop_kills_thread(self):
        cluster = Cluster(n_nodes=2)
        service = GpuHostService(cluster[0])
        service.stop()
        # A post-stop submit is never serviced.
        buf = cluster[0].host.alloc(8)
        dst = cluster[1].host.alloc(8)
        service.submit_from_gpu(_Request(buf=buf, nbytes=8,
                                         target=cluster[1].name, wire_tag=1,
                                         remote_addr=dst.addr()))
        cluster.run()
        assert service.serviced == []
