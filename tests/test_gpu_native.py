"""Tests for the GPU Native Networking extension and triggered gets."""

import numpy as np
import pytest

from repro.apps.microbench import run_microbenchmark
from repro.config import default_config

from conftest import build_nic_testbed


@pytest.fixture(scope="module")
def results():
    cfg = default_config()
    return {s: run_microbenchmark(cfg, s)
            for s in ("gputn", "gpu-host", "gpu-native", "gds", "hdn")}


class TestGpuNativePlacement:
    """The paper's §5.1.1 expectation: GPU-TN offers 'improved latency'
    over GPU Native because packet creation moves to the CPU."""

    def test_payload_delivered(self, results):
        r = results["gpu-native"]
        assert r.payload_ok and r.memory_hazards == 0

    def test_slower_than_gputn(self, results):
        assert (results["gpu-native"].normalized_target_completion_ns
                > results["gputn"].normalized_target_completion_ns)

    def test_intra_kernel_but_stack_costs(self, results):
        """Network posted from within the kernel, but the in-kernel stack
        makes the kernel itself much longer than GPU-TN's."""
        native = results["gpu-native"]
        assert native.initiator.network_posted < native.initiator.kernel_finished
        assert native.kernel_exec_ns > results["gputn"].kernel_exec_ns

    def test_no_cpu_networking_work(self, results):
        """Table 1's 'CPU Overhead: NA' -- nothing posted by the host."""
        assert results["gpu-native"].initiator.strategy == "gpu-native"

    def test_full_taxonomy_latency_ordering(self, results):
        """The complete latency picture across all five classes."""
        t = {s: r.normalized_target_completion_ns for s, r in results.items()}
        assert t["gputn"] < t["gpu-host"] < t["gds"] < t["hdn"]
        assert t["gputn"] < t["gpu-native"]


class TestTriggeredGet:
    def test_triggered_get_fires_at_threshold(self, nic_testbed):
        tb = nic_testbed
        local = tb.alloc_registered("n0", 64)
        remote = tb.alloc_registered("n1", 64)
        remote.view(np.uint8)[:] = 0xEE
        nic = tb.nics["n0"]
        entry = nic.register_triggered_get(tag=31, threshold=2,
                                           local_addr=local.addr(), nbytes=64,
                                           target="n1",
                                           remote_addr=remote.addr())
        nic.mmio_write(nic.trigger_address, 31)
        tb.sim.run()
        assert not nic.get_handle_for(entry).complete.triggered
        nic.mmio_write(nic.trigger_address, 31)
        tb.sim.run_until_event(nic.get_handle_for(entry).complete)
        assert (local.view(np.uint8) == 0xEE).all()

    def test_triggered_get_relaxed_sync(self, nic_testbed):
        """Early triggers also arm gets registered later."""
        tb = nic_testbed
        local = tb.alloc_registered("n0", 32)
        remote = tb.alloc_registered("n1", 32)
        remote.view(np.uint8)[:] = 0x44
        nic = tb.nics["n0"]
        nic.mmio_write(nic.trigger_address, 55)
        tb.sim.run()
        entry = nic.register_triggered_get(tag=55, threshold=1,
                                           local_addr=local.addr(), nbytes=32,
                                           target="n1",
                                           remote_addr=remote.addr())
        tb.sim.run_until_event(nic.get_handle_for(entry).complete)
        assert (local.view(np.uint8) == 0x44).all()

    def test_get_handle_for_rejects_puts(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        entry = tb.nics["n0"].register_triggered_put(
            tag=1, threshold=1, local_addr=src.addr(), nbytes=8,
            target="n1", remote_addr=dst.addr())
        with pytest.raises(ValueError, match="not a get"):
            tb.nics["n0"].get_handle_for(entry)
