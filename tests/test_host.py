"""Unit tests for the host runtime (repro.host)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.gpu.kernel import KernelDescriptor


def make_cluster(n=2):
    return Cluster(n_nodes=n)


def run_proc(cluster, gen):
    p = cluster.spawn(gen)
    return cluster.sim.run_until_event(p)


class TestCompute:
    def test_compute_bytes_charges_time(self):
        cluster = make_cluster()
        host = cluster[0].host

        def proc():
            yield from host.compute_bytes(550_000)  # 550 KB at 55 B/ns
            return cluster.sim.now

        assert run_proc(cluster, proc()) == 10_000

    def test_zero_bytes_is_free(self):
        cluster = make_cluster()
        host = cluster[0].host

        def proc():
            yield from host.compute_bytes(0)
            return cluster.sim.now

        assert run_proc(cluster, proc()) == 0

    def test_busy_ns_accumulates(self):
        cluster = make_cluster()
        host = cluster[0].host

        def proc():
            yield from host.compute_bytes(55_000)
            yield from host.compute_bytes(55_000)

        run_proc(cluster, proc())
        assert host.stats["busy_ns"] == 2_000


class TestSendRecv:
    def test_roundtrip_moves_data(self):
        cluster = make_cluster()
        a, b = cluster[0], cluster[1]
        src = a.host.alloc(128)
        dst = b.host.alloc(128)
        a.host.cpu_write(src, np.full(128, 7, dtype=np.uint8))

        def sender():
            yield from a.host.send(src, 128, b.name, tag=5)

        def receiver():
            h = b.host.post_recv(5, dst, 128)
            yield from b.host.wait_recv(h)
            return bytes(dst.view(np.uint8)[:4])

        cluster.spawn(sender())
        p = cluster.spawn(receiver())
        assert cluster.sim.run_until_event(p) == b"\x07" * 4

    def test_send_charges_packet_build_cost(self):
        cluster = make_cluster()
        host = cluster[0].host
        dst = cluster[1].host.alloc(64)
        src = host.alloc(64)

        def proc():
            yield from host.send(src, 64, cluster[1].name, tag=1)
            return cluster.sim.now

        cpu = cluster.config.cpu
        assert run_proc(cluster, proc()) == cpu.packet_build_ns + cpu.send_post_ns
        del dst

    def test_wait_recv_failure_propagates(self):
        cluster = make_cluster()
        a, b = cluster[0], cluster[1]
        src = a.host.alloc(128)
        dst = b.host.alloc(64)

        def sender():
            yield from a.host.send(src, 128, b.name, tag=9)

        def receiver():
            h = b.host.post_recv(9, dst, 64)  # too small
            yield from b.host.wait_recv(h)

        cluster.spawn(sender())
        p = cluster.spawn(receiver())
        with pytest.raises(ValueError, match="overflow"):
            cluster.sim.run_until_event(p)


class TestKernelPath:
    def test_launch_kernel_charges_sw_cost(self):
        cluster = make_cluster()
        host = cluster[0].host

        def empty(ctx):
            return
            yield

        def proc():
            inst = yield from host.launch_kernel(
                KernelDescriptor(fn=empty, n_workgroups=1))
            t_launched = cluster.sim.now
            yield inst.finished
            return t_launched, cluster.sim.now

        t_launched, t_done = run_proc(cluster, proc())
        assert t_launched == cluster.config.cpu.kernel_dispatch_sw_ns
        assert t_done == t_launched + 3000

    def test_wait_kernel_blocking_costs_more_than_spin(self):
        def empty(ctx):
            return
            yield

        times = {}
        for mode in ("spin", "blocking"):
            cluster = make_cluster()
            host = cluster[0].host

            def proc(host=host, cluster=cluster, mode=mode):
                inst = yield from host.launch_kernel(
                    KernelDescriptor(fn=empty, n_workgroups=1))
                yield from host.wait_kernel(inst, mode=mode)
                return cluster.sim.now

            times[mode] = run_proc(cluster, proc())
        assert (times["blocking"] - times["spin"]
                == cluster.config.cpu.kernel_sync_block_ns
                - cluster.config.cpu.completion_poll_ns)

    def test_wait_kernel_bad_mode(self):
        cluster = make_cluster()
        host = cluster[0].host

        def empty(ctx):
            return
            yield

        def proc():
            inst = yield from host.launch_kernel(
                KernelDescriptor(fn=empty, n_workgroups=1))
            yield from host.wait_kernel(inst, mode="nap")

        p = cluster.spawn(proc())
        with pytest.raises(ValueError, match="unknown wait mode"):
            cluster.sim.run_until_event(p)

    def test_launch_without_gpu_rejected(self):
        cluster = Cluster(n_nodes=1, with_gpu=False)
        host = cluster[0].host

        def empty(ctx):
            return
            yield

        def proc():
            yield from host.launch_kernel(KernelDescriptor(fn=empty, n_workgroups=1))

        p = cluster.spawn(proc())
        with pytest.raises(RuntimeError, match="no GPU"):
            cluster.sim.run_until_event(p)


class TestFlags:
    def test_poll_flag_returns_value(self):
        cluster = make_cluster()
        host = cluster[0].host
        flag = host.alloc(4)

        def proc():
            value = yield from host.poll_flag(flag, at_least=3)
            return value, cluster.sim.now

        def bump():
            flag.view(np.uint32)[0] += 1

        for t in (100, 200, 300):
            cluster.sim.schedule(t, bump)
        value, t = run_proc(cluster, proc())
        assert value == 3 and t >= 300


class TestAlloc:
    def test_alloc_registers_by_default(self):
        cluster = make_cluster()
        buf = cluster[0].host.alloc(64)
        assert buf.registered

    def test_alloc_unregistered(self):
        cluster = make_cluster()
        buf = cluster[0].host.alloc(64, register=False)
        assert not buf.registered


class TestCluster:
    def test_node_count_and_names(self):
        cluster = Cluster(n_nodes=3)
        assert len(cluster) == 3
        assert [n.name for n in cluster] == ["node0", "node1", "node2"]
        assert cluster.node("node1") is cluster[1]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)

    def test_without_gpu(self):
        cluster = Cluster(n_nodes=1, with_gpu=False)
        assert cluster[0].gpu is None

    def test_nodes_share_fabric_but_not_memory(self):
        cluster = Cluster(n_nodes=2)
        assert cluster[0].space is not cluster[1].space
        assert cluster[0].nic.fabric is cluster[1].nic.fabric

    def test_hazard_aggregation(self):
        from repro.memory import Agent

        cluster = Cluster(n_nodes=2)
        buf = cluster[0].host.alloc(64)
        cluster[0].mem.record_write(0, Agent.GPU, buf)
        cluster[0].mem.record_read(1, Agent.NIC, buf)
        assert cluster.total_hazards() == 1
