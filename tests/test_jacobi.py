"""Tests for the 2D Jacobi application (repro.apps.jacobi, Figure 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jacobi import jacobi_reference, run_jacobi
from repro.config import default_config

ALL = ("cpu", "hdn", "gds", "gputn", "gputn-persistent", "gputn-overlap")


class TestNumericalCorrectness:
    @pytest.mark.parametrize("strategy", ALL)
    def test_matches_reference(self, strategy):
        ref = jacobi_reference(24, 2, 2, 3, seed=5)
        r = run_jacobi(strategy=strategy, n=24, px=2, py=2, iters=3, seed=5)
        assert np.allclose(r.grid, ref, rtol=1e-6), strategy

    @pytest.mark.parametrize("strategy", ("hdn", "gputn"))
    def test_non_square_decomposition(self, strategy):
        ref = jacobi_reference(16, 4, 1, 2, seed=3)
        r = run_jacobi(strategy=strategy, n=16, px=4, py=1, iters=2, seed=3)
        assert np.allclose(r.grid, ref, rtol=1e-6)

    @pytest.mark.parametrize("strategy", ALL)
    def test_no_memory_hazards(self, strategy):
        r = run_jacobi(strategy=strategy, n=16, iters=2)
        assert r.memory_hazards == 0

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=24),
        iters=st.integers(min_value=1, max_value=4),
        layout=st.sampled_from([(2, 2), (1, 2), (2, 1), (3, 1)]),
        strategy=st.sampled_from(["hdn", "gputn"]),
    )
    def test_property_distributed_equals_reference(self, n, iters, layout,
                                                   strategy):
        px, py = layout
        ref = jacobi_reference(n, px, py, iters, seed=1)
        r = run_jacobi(strategy=strategy, n=n, px=px, py=py, iters=iters,
                       seed=1)
        assert np.allclose(r.grid, ref, rtol=1e-6)


class TestTiming:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            run_jacobi(strategy="warp")

    def test_per_iteration_helper(self):
        r = run_jacobi(strategy="hdn", n=16, iters=4)
        assert r.per_iteration_ns == pytest.approx(r.total_ns / 4)

    def test_more_iterations_cost_more(self):
        a = run_jacobi(strategy="gputn", n=32, iters=1).total_ns
        b = run_jacobi(strategy="gputn", n=32, iters=3).total_ns
        assert b > a

    def test_bigger_grids_cost_more(self):
        a = run_jacobi(strategy="hdn", n=64, iters=1).total_ns
        b = run_jacobi(strategy="hdn", n=512, iters=1).total_ns
        assert b > a


class TestFigure9Shape:
    """The paper's qualitative Figure 9 claims, as assertions."""

    @pytest.fixture(scope="class")
    def sweep(self):
        cfg = default_config()
        out = {}
        for n in (16, 128, 1024):
            out[n] = {s: run_jacobi(cfg, s, n=n, iters=2).total_ns
                      for s in ("cpu", "hdn", "gds", "gputn")}
        return out

    def test_gputn_beats_gds_beats_hdn_everywhere(self, sweep):
        for n, row in sweep.items():
            assert row["gputn"] < row["gds"] < row["hdn"], n

    def test_cpu_wins_small_grids(self, sweep):
        assert sweep[16]["cpu"] < sweep[16]["hdn"]

    def test_cpu_loses_large_grids(self, sweep):
        assert sweep[1024]["cpu"] > sweep[1024]["hdn"]

    def test_gains_shrink_with_grid_size(self, sweep):
        """Speedups converge toward 1 as compute dominates."""
        gain_small = sweep[16]["hdn"] / sweep[16]["gputn"]
        gain_large = sweep[1024]["hdn"] / sweep[1024]["gputn"]
        assert gain_small > gain_large
        assert gain_large < 1.10

    def test_gds_gain_on_medium_grids_about_10pct(self, sweep):
        gain = sweep[128]["hdn"] / sweep[128]["gds"]
        assert 1.02 <= gain <= 1.25, f"paper: ~1.1, got {gain:.3f}"

    def test_persistent_extension_fastest(self):
        cfg = default_config()
        gputn = run_jacobi(cfg, "gputn", n=64, iters=4).total_ns
        persist = run_jacobi(cfg, "gputn-persistent", n=64, iters=4).total_ns
        assert persist < gputn

    def test_cpu_uses_no_gpu(self):
        r = run_jacobi(strategy="cpu", n=16, iters=1)
        assert r.cpu_busy_ns > 0

    def test_overlap_variant_never_slower(self):
        """Extension finding (DESIGN.md): boundary-first overlap cannot
        lose, and for this geometry gains ~nothing (halos are 4N bytes
        against 8N^2 of interior traffic)."""
        cfg = default_config()
        for n in (64, 512):
            base = run_jacobi(cfg, "gputn", n=n, iters=2).total_ns
            over = run_jacobi(cfg, "gputn-overlap", n=n, iters=2).total_ns
            assert over <= base * 1.001

    def test_weak_scaling_holds(self):
        """Paper: 'weak scaling would stay at the same point, since the
        communication patterns do not significantly change with the
        introduction of more nodes' -- per-iteration time at fixed local
        N is nearly flat in the node count."""
        cfg = default_config()
        t4 = run_jacobi(cfg, "gputn", n=128, px=2, py=2, iters=2).per_iteration_ns
        t9 = run_jacobi(cfg, "gputn", n=128, px=3, py=3, iters=2).per_iteration_ns
        assert t9 <= t4 * 1.30  # interior nodes gain 4th neighbour, no more
