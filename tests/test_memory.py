"""Unit tests for the memory substrate (repro.memory)."""

import numpy as np
import pytest

from repro.config import default_config
from repro.memory import (
    AddressSpace,
    Agent,
    MemoryOrder,
    MemoryTiming,
    RegistrationError,
    Scope,
    ScopedMemoryModel,
)
from repro.memory.model import StaleReadError


class TestAddressSpace:
    def test_alloc_and_views(self):
        space = AddressSpace("n0")
        buf = space.alloc(1024, name="send")
        v = buf.view(np.float32)
        assert v.shape == (256,)
        v[:] = 1.5
        assert buf.view(np.float32)[0] == 1.5

    def test_view_bounds_checked(self):
        buf = AddressSpace().alloc(64)
        with pytest.raises(IndexError):
            buf.view(np.float64, count=9)
        with pytest.raises(IndexError):
            buf.view(np.uint8, count=1, offset=64)

    def test_read_write_bytes_roundtrip(self):
        buf = AddressSpace().alloc(16)
        buf.write_bytes(4, b"abcd")
        assert buf.read_bytes(4, 4) == b"abcd"

    def test_oob_access_rejected(self):
        buf = AddressSpace().alloc(8)
        with pytest.raises(IndexError):
            buf.read_bytes(4, 8)
        with pytest.raises(IndexError):
            buf.write_bytes(-1, b"x")

    def test_addresses_unique_and_resolvable(self):
        space = AddressSpace()
        a, b = space.alloc(100), space.alloc(100)
        assert a.base != b.base
        buf, off = space.resolve(b.addr(37))
        assert buf is b and off == 37

    def test_resolve_unmapped_rejected(self):
        space = AddressSpace()
        space.alloc(10)
        with pytest.raises(IndexError):
            space.resolve(0xDEAD_0000)

    def test_resolve_straddling_guard_page_rejected(self):
        space = AddressSpace()
        a = space.alloc(100)
        space.alloc(100)
        with pytest.raises(IndexError):
            space.resolve(a.addr(90), nbytes=20)

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(0)

    def test_free_and_double_free(self):
        space = AddressSpace()
        buf = space.alloc(10)
        space.free(buf)
        with pytest.raises(ValueError):
            space.free(buf)


class TestDmaRegistration:
    def test_dma_requires_registration(self):
        space = AddressSpace()
        buf = space.alloc(64)
        with pytest.raises(RegistrationError):
            space.dma_read(buf.addr(), 64)
        space.register(buf)
        buf.write_bytes(0, b"\x07" * 64)
        assert space.dma_read(buf.addr(), 64) == b"\x07" * 64

    def test_dma_write(self):
        space = AddressSpace()
        buf = space.alloc(32)
        space.register(buf)
        space.dma_write(buf.addr(8), b"net!")
        assert buf.read_bytes(8, 4) == b"net!"

    def test_deregister_revokes_access(self):
        space = AddressSpace()
        buf = space.alloc(32)
        space.register(buf)
        space.deregister(buf)
        with pytest.raises(RegistrationError):
            space.dma_write(buf.addr(), b"x")

    def test_register_foreign_buffer_rejected(self):
        s1, s2 = AddressSpace("a"), AddressSpace("b")
        buf = s1.alloc(8)
        with pytest.raises(RegistrationError):
            s2.register(buf)

    def test_register_freed_buffer_rejected(self):
        space = AddressSpace()
        buf = space.alloc(8)
        space.free(buf)
        with pytest.raises(RegistrationError):
            space.register(buf)


class TestScopedMemoryModel:
    """Paper Section 4.2.6: buffer must be released at system scope before
    the NIC reads it; GPU must acquire to see NIC writes."""

    def _setup(self):
        space = AddressSpace()
        return ScopedMemoryModel(), space.alloc(256, name="sendbuf")

    def test_nic_read_after_gpu_release_is_clean(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf)
        mm.release(20, Agent.GPU, Scope.SYSTEM)
        assert mm.record_read(30, Agent.NIC, buf) is None
        assert mm.hazard_count() == 0

    def test_nic_read_without_release_is_hazard(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf)
        hazard = mm.record_read(30, Agent.NIC, buf)
        assert hazard is not None
        assert hazard.reader is Agent.NIC and hazard.writer is Agent.GPU

    def test_device_scope_release_does_not_publish(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf)
        mm.release(20, Agent.GPU, Scope.DEVICE)
        assert mm.record_read(30, Agent.NIC, buf) is not None

    def test_system_scope_release_store_publishes(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, scope=Scope.SYSTEM, order=MemoryOrder.RELEASE)
        assert mm.record_read(30, Agent.NIC, buf) is None

    def test_gpu_needs_acquire_to_see_nic_write(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.NIC, buf)
        hazard = mm.record_read(20, Agent.GPU, buf)  # relaxed read
        assert hazard is not None
        mm.acquire(30, Agent.GPU, Scope.SYSTEM)
        assert mm.record_read(40, Agent.GPU, buf) is None

    def test_gpu_acquire_load_observes(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.NIC, buf)
        assert mm.record_read(
            20, Agent.GPU, buf, scope=Scope.SYSTEM, order=MemoryOrder.ACQUIRE
        ) is None

    def test_cpu_writes_coherent_with_nic(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.CPU, buf)
        assert mm.record_read(20, Agent.NIC, buf) is None

    def test_rewrite_after_release_is_hazard_again(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf)
        mm.release(20, Agent.GPU, Scope.SYSTEM)
        mm.record_write(30, Agent.GPU, buf)  # dirty again
        assert mm.record_read(40, Agent.NIC, buf) is not None

    def test_strict_mode_raises(self):
        mm = ScopedMemoryModel(strict=True)
        buf = AddressSpace().alloc(8)
        mm.record_write(10, Agent.GPU, buf)
        with pytest.raises(StaleReadError):
            mm.record_read(20, Agent.NIC, buf)

    def test_own_writes_always_visible(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf)
        assert mm.record_read(11, Agent.GPU, buf) is None

    def test_targeted_release_only_publishes_named_buffers(self):
        mm = ScopedMemoryModel()
        space = AddressSpace()
        a, b = space.alloc(8, name="a"), space.alloc(8, name="b")
        mm.record_write(10, Agent.GPU, a)
        mm.record_write(10, Agent.GPU, b)
        mm.release(20, Agent.GPU, Scope.SYSTEM, buffers=[a])
        assert mm.record_read(30, Agent.NIC, a) is None
        assert mm.record_read(30, Agent.NIC, b) is not None

    def test_clear(self):
        mm, buf = self._setup()
        mm.record_write(1, Agent.GPU, buf)
        mm.record_read(2, Agent.NIC, buf)
        assert mm.hazard_count() == 1
        mm.clear()
        assert mm.hazard_count() == 0


class TestIntervalGranularity:
    """Pipelined protocols write slice s+1 while the NIC reads slice s of
    the same buffer; disjoint intervals must not flag hazards."""

    def _setup(self):
        space = AddressSpace()
        return ScopedMemoryModel(), space.alloc(1024, name="vec")

    def test_disjoint_intervals_no_hazard(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=512, hi=1024)
        assert mm.record_read(20, Agent.NIC, buf, lo=0, hi=512) is None

    def test_overlapping_intervals_hazard(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=256, hi=768)
        assert mm.record_read(20, Agent.NIC, buf, lo=500, hi=600) is not None

    def test_release_clears_all_intervals(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=0, hi=256)
        mm.record_write(11, Agent.GPU, buf, lo=256, hi=512)
        mm.release(20, Agent.GPU, Scope.SYSTEM)
        assert mm.record_read(30, Agent.NIC, buf) is None

    def test_write_after_release_dirty_only_new_interval(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=0, hi=256)
        mm.release(20, Agent.GPU, Scope.SYSTEM)
        mm.record_write(30, Agent.GPU, buf, lo=256, hi=512)
        assert mm.record_read(40, Agent.NIC, buf, lo=0, hi=256) is None
        assert mm.record_read(40, Agent.NIC, buf, lo=256, hi=512) is not None

    def test_whole_buffer_read_sees_any_dirty_interval(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=1000, hi=1024)
        assert mm.record_read(20, Agent.NIC, buf) is not None

    def test_empty_interval_rejected(self):
        mm, buf = self._setup()
        with pytest.raises(ValueError, match="empty write interval"):
            mm.record_write(10, Agent.GPU, buf, lo=10, hi=10)

    def test_adjacent_intervals_do_not_overlap(self):
        mm, buf = self._setup()
        mm.record_write(10, Agent.GPU, buf, lo=0, hi=512)
        assert mm.record_read(20, Agent.NIC, buf, lo=512, hi=1024) is None


class TestMemoryTiming:
    def test_small_sets_hit_l1(self):
        cfg = default_config()
        t = MemoryTiming.for_cpu(cfg.cpu, cfg.memory)
        assert t.breakdown(1024)[0] == "L1"

    def test_levels_monotone(self):
        cfg = default_config()
        t = MemoryTiming.for_cpu(cfg.cpu, cfg.memory)
        sizes = [1 << k for k in range(10, 27)]
        times = [t.stream_ns(s) for s in sizes]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_large_sets_go_to_dram(self):
        cfg = default_config()
        t = MemoryTiming.for_cpu(cfg.cpu, cfg.memory)
        assert t.breakdown(64 * 1024 * 1024)[0] == "DRAM"

    def test_gpu_timing_builds(self):
        cfg = default_config()
        t = MemoryTiming.for_gpu(cfg.gpu, cfg.memory)
        assert t.stream_ns(0) == 0
        assert t.stream_ns(1 << 20) > 0

    def test_negative_rejected(self):
        cfg = default_config()
        t = MemoryTiming.for_cpu(cfg.cpu, cfg.memory)
        with pytest.raises(ValueError):
            t.stream_ns(-1)
