"""Tests for the repro.metrics observability layer.

Covers the registry primitives (log2 histogram bucketing, percentile
interpolation, time-series decimation), the attach_metrics hardware
instrumentation, the zero-overhead-when-disabled contract (records stay
byte-identical without a registry), the Perfetto counter-track export
and the cross-check between the metrics histograms and the degraded
study's exact percentiles.
"""

import json

import pytest

from repro.apps.degraded import DegradedExperiment
from repro.apps.microbench import MicrobenchExperiment
from repro.runtime import Observers
from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    attach_metrics,
)
from repro.runtime import chrome_trace
from repro.runtime.record import RunRecord


# ---------------------------------------------------------------- primitives
class TestCounter:
    def test_counts(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.dump() == 42

    def test_decrease_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_watermarks(self):
        g = Gauge("g")
        for v in (5, 2, 9, 4):
            g.set(v)
        assert g.dump() == {"value": 4, "min": 2, "max": 9, "updates": 4}

    def test_unset_dumps_none(self):
        assert Gauge("g").dump()["value"] is None


class TestHistogram:
    def test_bucket_bounds(self):
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(1) == (1, 1)
        assert Histogram.bucket_bounds(4) == (8, 15)

    @pytest.mark.parametrize("value,idx", [(0, 0), (1, 1), (2, 2), (3, 2),
                                           (4, 3), (7, 3), (8, 4), (1023, 10),
                                           (1024, 11)])
    def test_log2_bucketing(self, value, idx):
        h = Histogram("h")
        h.record(value)
        assert h.buckets[idx] == 1
        lo, hi = Histogram.bucket_bounds(idx)
        assert lo <= value <= hi

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Histogram("h").record(-1)

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(50) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(0)
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_single_value_percentiles_exact(self):
        h = Histogram("h")
        h.record(1000)
        # min/max clamping: one observation reports itself, not its
        # bucket edges [512, 1023].
        assert h.percentile(50) == h.percentile(99) == 1000

    def test_percentile_within_true_bucket(self):
        h = Histogram("h")
        values = [3, 3, 5, 17, 17, 17, 40, 900, 900, 5000]
        for v in values:
            h.record(v)
        for q in (50, 90, 99):
            est = h.percentile(q)
            rank = max(1, -(-int(q * len(values)) // 100))
            true = sorted(values)[rank - 1]
            lo, hi = Histogram.bucket_bounds(true.bit_length())
            assert lo <= est <= hi, (q, est, true)

    def test_dump_shape(self):
        h = Histogram("h")
        for v in (0, 1, 1, 6):
            h.record(v)
        doc = h.dump()
        assert doc["count"] == 4 and doc["sum"] == 8
        assert doc["min"] == 0 and doc["max"] == 6
        assert doc["buckets"] == {"0": 1, "1": 2, "7": 1}


class TestTimeSeries:
    def test_records_samples(self):
        ts = TimeSeries("t")
        ts.sample(10, 1)
        ts.sample(20, 5)
        assert ts.samples == [(10, 1), (20, 5)]
        assert ts.last == 5

    def test_decimation_bounds_memory(self):
        ts = TimeSeries("t", max_samples=16)
        for i in range(10_000):
            ts.sample(i, i)
        assert ts.observed == 10_000
        assert len(ts.samples) < 16
        assert ts.min == 0 and ts.max == 9_999
        # Kept samples stay in time order, thinned roughly uniformly:
        # consecutive gaps never differ by more than one doubling.
        times = [t for t, _ in ts.samples]
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) <= 2 * min(gaps)

    def test_extremes_survive_decimation(self):
        ts = TimeSeries("t", max_samples=4)
        for i, v in enumerate([7, 1, 100, 3, 3, 3, 3, 3, 3]):
            ts.sample(i, v)
        assert ts.min == 1 and ts.max == 100

    def test_tiny_max_samples_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("t", max_samples=1)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("a") is reg.histogram("a")
        assert len(reg) == 2  # same name, different kinds coexist

    def test_empty_dump_is_empty(self):
        assert MetricsRegistry().dump() == {}

    def test_dump_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(3)
        reg.histogram("h").record(4)
        reg.timeseries("s").sample(0, 1)
        doc = reg.dump()
        assert set(doc) == {"counters", "gauges", "histograms", "series"}
        assert doc["counters"] == {"c": 1}

    def test_dump_is_json_safe(self):
        reg = MetricsRegistry()
        reg.histogram("h").record(12)
        reg.timeseries("s", node="node0").sample(5, 2)
        record = RunRecord(experiment="x", params={}, config_fingerprint="f",
                           metrics={}, telemetry=reg.dump())
        again = RunRecord.from_json(record.to_json())
        assert again.telemetry == record.telemetry


# ------------------------------------------------------------- instrumentation
def _microbench(metrics=None):
    from repro.runtime import Observers

    observers = Observers(metrics=metrics) if metrics is not None else None
    return MicrobenchExperiment().execute({"strategy": "gputn"},
                                          observers=observers)


class TestAttachMetrics:
    def test_hardware_counters_populate(self):
        reg = MetricsRegistry()
        _microbench(metrics=reg)
        doc = reg.dump()
        counters = doc["counters"]
        assert counters["sim.events"] > 0
        assert counters["fabric.link.node0->node1.bytes"] == 64
        assert counters["node0.nic.trigger_registers"] == 1
        assert counters["node0.nic.trigger_fires"] == 1
        assert counters["node0.nic.deliveries"] == 1
        assert doc["histograms"]["nic.message_latency_ns"]["count"] == 1
        assert doc["histograms"]["gpu.kernel_launch_ns"]["count"] == 1
        assert doc["gauges"]["node0.gpu.cu_occupancy"]["max"] >= 1
        assert doc["series"]["node0.nic.trigger_fifo_depth"]["observed"] > 0

    def test_telemetry_lands_on_record(self):
        reg = MetricsRegistry()
        execution = _microbench(metrics=reg)
        assert execution.record.telemetry == json.loads(
            json.dumps(reg.dump()))
        assert "telemetry" in json.loads(execution.record.to_json())

    def test_disabled_run_is_byte_identical(self):
        """The zero-overhead contract: without a registry the record --
        golden fixtures included -- must not change by a byte."""
        plain = _microbench().record
        instrumented = _microbench(metrics=MetricsRegistry()).record
        plain_doc = json.loads(plain.to_json())
        inst_doc = json.loads(instrumented.to_json())
        assert "telemetry" not in plain_doc
        inst_doc.pop("telemetry")
        assert inst_doc == plain_doc

    def test_disabled_run_leaves_hooks_empty(self):
        execution = _microbench()
        cluster = execution.cluster
        assert cluster.metrics is None
        assert cluster.fabric.probes == []
        for node in cluster:
            assert node.nic.queue_probes == []
            assert node.nic.trigger_list.observers == []
            assert node.gpu.probes == []

    def test_double_attach_rejected(self):
        reg = MetricsRegistry()
        execution = _microbench(metrics=reg)
        with pytest.raises(RuntimeError, match="already has a metrics"):
            attach_metrics(execution.cluster, MetricsRegistry())

    def test_transport_counters_populate_under_loss(self):
        reg = MetricsRegistry()
        DegradedExperiment().execute(
            {"strategy": "gputn", "loss": 0.05, "messages": 32},
            observers=Observers(metrics=reg))
        counters = reg.dump()["counters"]
        assert counters["node0.transport.tx_data"] >= 32
        assert counters["node1.transport.accepts"] >= 1
        # 5% loss over 32+ transmissions: a retransmit round is certain
        # with this seed (pinned by the fault plan's deterministic rng).
        assert counters.get("node0.transport.retransmit_rounds", 0) >= 1


class TestDegradedAgreement:
    def test_histogram_percentiles_match_study(self):
        """The metrics histogram of app message latencies must agree with
        the study's exact numpy percentiles within log2-bucket rounding
        (a factor of two)."""
        reg = MetricsRegistry()
        execution = DegradedExperiment().execute(
            {"strategy": "gputn"}, observers=Observers(metrics=reg))
        m = execution.record.metrics
        hist = reg.dump()["histograms"]["app.message_latency_ns"]
        assert hist["count"] == m["delivered"] == 64
        assert hist["max"] == m["max_latency_ns"]
        for key, exact in (("p50", m["p50_latency_ns"]),
                           ("p99", m["p99_latency_ns"])):
            est = hist[key]
            assert exact / 2 <= est <= exact * 2, (key, est, exact)


# ------------------------------------------------------------ trace export
class TestCounterTracks:
    def test_series_become_counter_events(self):
        reg = MetricsRegistry()
        execution = MicrobenchExperiment().execute(
            {"strategy": "gputn"}, trace=True, observers=Observers(metrics=reg))
        doc = chrome_trace(execution.cluster.tracer, metrics=reg)
        events = doc["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected counter track events"
        names = {e["name"] for e in counters}
        assert "node0.nic.trigger_fifo_depth" in names
        for e in counters:
            assert set(e["args"]) == {"value"}
        # Node-tagged series share the node's pid with its spans.
        node_pids = {e["args"]["name"]: e["pid"] for e in events
                     if e.get("ph") == "M" and e["name"] == "process_name"}
        depth = next(e for e in counters
                     if e["name"] == "node0.nic.trigger_fifo_depth")
        assert depth["pid"] == node_pids["node0"]

    def test_nodeless_series_get_metrics_process(self):
        reg = MetricsRegistry()
        reg.timeseries("global.level").sample(10, 3)
        execution = _microbench()
        doc = chrome_trace(execution.cluster.tracer, metrics=reg)
        meta = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e.get("ph") == "M" and e["name"] == "process_name"}
        assert "metrics" in meta
        track = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert track[0]["pid"] == meta["metrics"]

    def test_no_metrics_trace_unchanged(self):
        execution = MicrobenchExperiment().execute({"strategy": "gputn"},
                                                   trace=True)
        bare = chrome_trace(execution.cluster.tracer)
        with_empty = chrome_trace(execution.cluster.tracer,
                                  metrics=MetricsRegistry())
        assert bare == with_empty
        assert not any(e["ph"] == "C" for e in bare["traceEvents"])
