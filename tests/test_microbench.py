"""Integration tests for the Figure 8 microbenchmark (repro.apps.microbench).

These encode the paper's headline microbenchmark claims as assertions:
ordering, intra-kernel delivery, and the approximate improvement factors.
"""

import pytest

from repro.apps.microbench import (
    decomposition_rows,
    run_all_strategies,
    run_microbenchmark,
)
from repro.config import default_config


@pytest.fixture(scope="module")
def results():
    return run_all_strategies(default_config())


class TestCorrectness:
    def test_all_strategies_deliver_payload(self, results):
        for key, r in results.items():
            assert r.payload_ok, key

    def test_no_memory_hazards(self, results):
        for key, r in results.items():
            assert r.memory_hazards == 0, key

    def test_spans_present_for_gpu_strategies(self, results):
        for key in ("hdn", "gds", "gputn"):
            spans = results[key].spans
            for phase in ("kernel-launch", "kernel-exec", "kernel-teardown"):
                assert ("initiator", phase) in spans, (key, phase)


class TestPaperOrdering:
    """Figure 8: GPU-TN < GDS < HDN target completion."""

    def test_strict_ordering(self, results):
        t = {k: results[k].normalized_target_completion_ns
             for k in ("gputn", "gds", "hdn")}
        assert t["gputn"] < t["gds"] < t["hdn"]

    def test_gputn_vs_gds_about_25pct(self, results):
        gain = 1 - (results["gputn"].normalized_target_completion_ns
                    / results["gds"].normalized_target_completion_ns)
        assert 0.15 <= gain <= 0.35, f"paper: ~25%, got {gain:.0%}"

    def test_gputn_vs_hdn_about_35pct(self, results):
        gain = 1 - (results["gputn"].normalized_target_completion_ns
                    / results["hdn"].normalized_target_completion_ns)
        assert 0.25 <= gain <= 0.45, f"paper: ~35%, got {gain:.0%}"

    def test_absolute_scale_matches_paper(self, results):
        """Paper: GPU-TN 2.71 us, GDS 3.76 us, HDN 4.21 us (+-15%)."""
        paper = {"gputn": 2710, "gds": 3760, "hdn": 4210}
        for key, expect in paper.items():
            got = results[key].normalized_target_completion_ns
            assert abs(got - expect) / expect < 0.15, (key, got, expect)


class TestIntraKernelProperty:
    def test_gputn_target_completes_before_initiator_kernel_ends(self, results):
        """The paper's signature observation: with GPU-TN 'the target node
        receives the network data before the kernel on the initiator
        completes'."""
        r = results["gputn"]
        assert r.target_completion_ns < r.initiator.kernel_finished

    def test_kernel_boundary_strategies_complete_after_kernel(self, results):
        for key in ("gds", "hdn"):
            r = results[key]
            assert r.target_completion_ns > r.initiator.kernel_finished, key

    def test_gputn_kernel_exec_slightly_longer_than_gds(self, results):
        """Figure 8: the GPU-TN kernel runs slightly longer (trigger store
        inside the kernel): 0.49 us vs 0.43 us."""
        assert results["gputn"].kernel_exec_ns > results["gds"].kernel_exec_ns


class TestSpanCalibration:
    def test_launch_and_teardown_match_table2(self, results):
        for key in ("hdn", "gds", "gputn"):
            spans = results[key].spans
            launch = spans[("initiator", "kernel-launch")]
            teardown = spans[("initiator", "kernel-teardown")]
            assert launch[1] - launch[0] == 1500
            assert teardown[1] - teardown[0] == 1500


class TestRelaxedSyncOverlap:
    def test_overlap_post_still_correct(self):
        r = run_microbenchmark(strategy="gputn", overlap_post=True)
        assert r.payload_ok and r.memory_hazards == 0

    def test_overlap_post_not_slower(self):
        base = run_microbenchmark(strategy="gputn", overlap_post=False)
        overlap = run_microbenchmark(strategy="gputn", overlap_post=True)
        assert (overlap.target_completion_ns <= base.target_completion_ns)


class TestReporting:
    def test_decomposition_rows_render(self, results):
        rows = decomposition_rows(results)
        assert any("GPUTN" in r for r in rows)
        assert len(rows) == 6  # two lines per GPU strategy

    def test_speedup_helper(self, results):
        assert results["gputn"].speedup_vs(results["hdn"]) > 1.0


class TestScaling:
    def test_larger_payloads_take_longer(self):
        small = run_microbenchmark(strategy="gputn", nbytes=64)
        large = run_microbenchmark(strategy="gputn", nbytes=64 * 1024)
        assert (large.target_completion_ns > small.target_completion_ns)

    def test_cpu_strategy_runs(self):
        r = run_microbenchmark(strategy="cpu")
        assert r.payload_ok
        # No GPU spans for the CPU flow.
        assert ("initiator", "kernel-exec") not in r.spans
