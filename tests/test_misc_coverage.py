"""Coverage for remaining public-API corners across the package."""

import numpy as np
import pytest

from repro.analysis import figure9_report, figure10_report, figure11_report
from repro.cluster import Cluster
from repro.config import MB, default_config
from repro.gpu.kernel import KernelDescriptor


class TestKernelContextDetails:
    def _run_kernel(self, fn, n_workgroups=1, wg_size=256, **args):
        cluster = Cluster(n_nodes=2)
        desc = KernelDescriptor(fn=fn, n_workgroups=n_workgroups,
                                wg_size=wg_size, args=args)
        inst = cluster[0].gpu.launch(desc)
        cluster.sim.run_until_event(inst.finished)
        return cluster, desc

    def test_compute_bytes_zero_is_free(self):
        times = {}

        def probe(ctx):
            t0 = ctx.sim.now
            yield ctx.compute_bytes(0)
            times["delta"] = ctx.sim.now - t0

        self._run_kernel(probe)
        assert times["delta"] == 0

    def test_negative_compute_rejected(self):
        def probe(ctx):
            yield ctx.compute(-1)

        cluster = Cluster(n_nodes=1)
        inst = cluster[0].gpu.launch(KernelDescriptor(fn=probe, n_workgroups=1))
        with pytest.raises(ValueError):
            cluster.sim.run_until_event(inst.finished)

    def test_per_workitem_trigger_counts_stores(self):
        def probe(ctx):
            yield ctx.fence_release_system()
            yield ctx.store_trigger_per_workitem(0x800, 32)

        cluster, _ = self._run_kernel(probe)
        assert cluster[0].nic.stats["trigger_writes"] == 32

    def test_per_workitem_zero_items_rejected(self):
        def probe(ctx):
            yield ctx.store_trigger_per_workitem(0x800, 0)

        cluster = Cluster(n_nodes=1)
        inst = cluster[0].gpu.launch(KernelDescriptor(fn=probe, n_workgroups=1))
        with pytest.raises(ValueError):
            cluster.sim.run_until_event(inst.finished)

    def test_poll_flag_invalid_target_rejected(self):
        def probe(ctx):
            yield from ctx.poll_flag(ctx.arg("flag"), at_least=0)

        cluster = Cluster(n_nodes=1)
        flag = cluster[0].host.alloc(4)
        inst = cluster[0].gpu.launch(
            KernelDescriptor(fn=probe, n_workgroups=1, args={"flag": flag}))
        with pytest.raises(ValueError):
            cluster.sim.run_until_event(inst.finished)

    def test_kernel_read_acquire_path(self):
        from repro.memory import Agent

        seen = {}

        def probe(ctx):
            buf = ctx.arg("buf")
            seen["value"] = int(ctx.read(buf, np.uint32, count=1,
                                         acquire=True)[0])
            yield ctx.compute(1)

        cluster = Cluster(n_nodes=2)
        buf = cluster[0].host.alloc(4)
        buf.view(np.uint32)[0] = 1234
        cluster[0].mem.record_write(0, Agent.NIC, buf)
        inst = cluster[0].gpu.launch(
            KernelDescriptor(fn=probe, n_workgroups=1, args={"buf": buf}))
        cluster.sim.run_until_event(inst.finished)
        assert seen["value"] == 1234
        assert cluster.total_hazards() == 0


class TestReportsMini:
    """Small-scale exercises of the heavier report functions."""

    def test_figure9_report_tiny(self, capsys):
        data = figure9_report(sizes=(16, 32), iters=1)
        assert set(data) == {"cpu", "gds", "gputn"}
        assert all(len(v) == 2 for v in data.values())
        assert "Figure 9" in capsys.readouterr().out

    def test_figure10_report_tiny(self, capsys):
        data = figure10_report(node_counts=(2, 4), nbytes=256 * 1024)
        assert all(len(v) == 2 for v in data.values())
        assert "Figure 10" in capsys.readouterr().out

    def test_figure11_report_small(self, capsys):
        data = figure11_report(n_nodes=2)
        assert set(data) == {"alexnet", "an4-lstm", "cifar", "large-synth",
                             "mnist-conv", "mnist-hidden"}
        assert "Figure 11" in capsys.readouterr().out


class TestMainEntry:
    def test_main_runs_subset(self, capsys):
        from repro.__main__ import main

        assert main(["tab1", "tab3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out


class TestLazyPackageExports:
    def test_lazy_attributes_resolve(self):
        import repro

        assert callable(repro.run_microbenchmark)
        assert callable(repro.run_jacobi)
        assert callable(repro.run_allreduce)
        assert callable(repro.project_deep_learning)
        assert repro.Cluster is Cluster
        assert "gputn" in repro.STRATEGIES

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            _ = repro.not_a_thing


class TestAllreduceBenchHelpers:
    def test_scaling_study_helpers(self):
        from repro.apps.allreduce_bench import strong_scaling_study

        study = strong_scaling_study(default_config(), node_counts=(2, 4),
                                     nbytes=256 * 1024,
                                     strategies=("cpu", "gputn"))
        sp = study.speedup_vs_cpu("gputn")
        assert len(sp) == 2 and all(v > 0 for v in sp)
        assert study.crossover_node_count("gputn") is None

    def test_run_allreduce_wrapper(self):
        from repro.apps.allreduce_bench import run_allreduce

        r = run_allreduce(n_nodes=2, nbytes=64 * 1024)
        assert r.correct
