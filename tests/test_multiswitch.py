"""Extension: clusters on multi-switch fabrics (GraphTopology and the
scale-out topology zoo).

The paper evaluates a single-switch star; the fabric layer generalizes to
arbitrary switch graphs, and GPU-TN's semantics are topology-agnostic.
These tests run the microbench protocol across a two-switch fabric, and
regression-test the reliable transport's multi-hop behavior: the go-back-N
retransmit timer is floored at 2x the path RTT (a sub-RTT configured
timeout on a long path must not cause spurious whole-window resends), and
loss recovery / per-pair FIFO hold on hop-contended fabrics.
"""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import (FaultConfig, ReliabilityConfig, default_config)
from repro.faults import FaultPlan
from repro.memory import AddressSpace, ScopedMemoryModel
from repro.net import Fabric, make_topology
from repro.net.topology import GraphTopology, StarTopology
from repro.nic import Nic
from repro.sim import Simulator, Tracer

from conftest import NicTestbed


def build_topo_testbed(spec: str, n_nodes: int) -> NicTestbed:
    """conftest's NIC testbed, but on a multi-switch topology."""
    config = default_config()
    sim = Simulator()
    tracer = Tracer()
    topo = make_topology(spec, n_nodes, config.network.link_latency_ns,
                         config.network.switch_latency_ns)
    nodes = list(topo.nodes)
    fabric = Fabric(sim, topo, config.network, tracer=tracer)
    spaces = {n: AddressSpace(n) for n in nodes}
    mems = {n: ScopedMemoryModel() for n in nodes}
    nics = {n: Nic(sim, n, spaces[n], mems[n], fabric, config, tracer=tracer)
            for n in nodes}
    return NicTestbed(sim, config, tracer, fabric, spaces, mems, nics, nodes)


def two_switch_topology(n_nodes=4):
    """node0,node1 on switch s0; node2,node3 on s1; s0--s1 trunk."""
    g = nx.Graph()
    names = [f"node{i}" for i in range(n_nodes)]
    for i, n in enumerate(names):
        g.add_edge(n, f"s{i * 2 // n_nodes}")
    g.add_edge("s0", "s1")
    return GraphTopology(g, names)


class TestGraphTopologyCluster:
    def test_cluster_accepts_custom_topology(self):
        topo = two_switch_topology()
        cluster = Cluster(n_nodes=4, topology=topo)
        assert cluster.topology is topo

    def test_mismatched_topology_rejected(self):
        topo = StarTopology(["a", "b"])
        with pytest.raises(ValueError, match="node0"):
            Cluster(n_nodes=2, topology=topo)

    def test_same_switch_vs_cross_switch_latency(self):
        """An extra switch + link adds exactly one hop of latency."""
        cluster = Cluster(n_nodes=4, topology=two_switch_topology())
        same = cluster.fabric.uncontended_latency_ns("node0", "node1", 64)
        cross = cluster.fabric.uncontended_latency_ns("node0", "node2", 64)
        net = cluster.config.network
        assert cross - same == net.link_latency_ns + net.switch_latency_ns

    def test_gputn_put_across_switches(self):
        """The full GPU-TN path works unchanged over multiple switches."""
        from repro.api import GpuTnEndpoint, work_group_kernel

        cluster = Cluster(n_nodes=4, topology=two_switch_topology())
        ep = GpuTnEndpoint(cluster.node("node0"))
        target = cluster.node("node3")
        send = cluster.node("node0").host.alloc(128)
        recv = target.host.alloc(128)

        def driver():
            op = yield from ep.trig_put(send, 128, "node3", recv.addr(),
                                        tag=0x77)
            yield from ep.launch(work_group_kernel, n_workgroups=1,
                                 tag_base=0x77, buffers=[send], fill=0x3C)
            delivered = yield ep.wait_delivered(op)
            return delivered.delivered_at

        t = cluster.sim.run_until_event(cluster.spawn(driver()))
        assert (recv.view(np.uint8) == 0x3C).all()
        assert cluster.total_hazards() == 0
        # Must include the two-switch path latency (3 links + 2 switches).
        assert t >= 3 * 100 + 2 * 100

    def test_allreduce_on_two_switch_fabric(self):
        """The ring Allreduce is fabric-agnostic: correct across switches."""
        from repro.collectives.ring import run_ring_allreduce

        topo = two_switch_topology()
        cfg = default_config()
        # run_ring_allreduce builds its own cluster; emulate by running
        # the executors over a custom cluster instead.
        from repro.cluster import Cluster as C
        from repro.collectives.ring import (
            _RingRank, _gputn_rank, allreduce_reference)

        cluster = C(n_nodes=4, config=cfg, topology=topo, trace=False)
        states = [_RingRank(cluster[r], r, 4, 64 * 1024, seed=2)
                  for r in range(4)]
        initial = [s.vector.view(np.float32).copy() for s in states]
        peers = {r: cluster[r] for r in range(4)}
        for r in range(4):
            cluster[r].host._ring_state = states[r]
        procs = [cluster.spawn(_gputn_rank(states[r], peers))
                 for r in range(4)]
        cluster.run()
        for p in procs:
            assert p.ok
        expected = allreduce_reference(initial, 4)
        for s in states:
            assert (s.vector.view(np.float32) == expected).all()
        del run_ring_allreduce


class TestMultiHopTransport:
    """Go-back-N over long paths: the single-hop assumptions audited out of
    the transport (PR 7) stay fixed."""

    def _stream(self, tb, src, dst, count, nbytes=4096):
        src_buf = tb.alloc_registered(src, nbytes, "src")
        handles, bufs = [], []
        for i in range(count):
            dst_buf = tb.alloc_registered(dst, nbytes, f"dst{i}")
            src_buf.view(np.uint8)[:] = (i + 1) & 0xFF
            handles.append(tb.nics[src].post_put(src_buf.addr(), nbytes, dst,
                                                 dst_buf.addr()))
            tb.sim.run_until_event(handles[-1].delivered)
            bufs.append(dst_buf)
        tb.sim.run()
        return handles, bufs

    def test_sub_rtt_timeout_causes_no_spurious_retransmits(self):
        """Regression: a configured RTO below the multi-hop path RTT used
        to fire mid-flight and resend the whole delivered window.  The
        transport now floors the timer at 2x path RTT."""
        tb = build_topo_testbed("torus:3x3", 9)
        src, dst = "node0", "node4"  # 3 hops each way on the 3x3 torus
        rtt = (tb.fabric.net.serialization_ns(4096)
               + tb.fabric.topology.path_latency_ns(src, dst))
        timeout = ReliabilityConfig(retransmit_timeout_ns=max(1, rtt // 4))
        for nic in tb.nics.values():
            nic.enable_reliability(timeout)
        handles, bufs = self._stream(tb, src, dst, 8)
        stats = tb.nics[src].transport.stats
        assert stats["timeouts"] == 0 and stats["retransmits"] == 0
        assert stats["acks_rx"] == 8
        assert all(h.delivered.ok for h in handles)
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_loss_recovery_on_fat_tree(self):
        """Drops on a 5-hop cross-pod path recover through go-back-N with
        the RTO floor active."""
        tb = build_topo_testbed("fat-tree:k=4", 16)
        src, dst = "node0", "node15"  # cross-pod: edge-agg-core-agg-edge
        assert tb.fabric.topology.hop_count(src, dst) == 5
        for nic in tb.nics.values():
            nic.enable_reliability(
                ReliabilityConfig(retransmit_timeout_ns=100, max_retries=8))
        plan = FaultPlan(FaultConfig(drop_prob=0.3), rng=7).attach(tb.fabric)
        _, bufs = self._stream(tb, src, dst, 12)
        assert plan.counters().get("drops", 0) > 0
        assert tb.nics[src].transport.stats["retransmits"] > 0
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_per_pair_fifo_under_shared_uplink_contention(self):
        """node0 and node1 share the ftE0.0 uplink; interleaved windows
        from both must still be accepted in per-pair order at two
        different destinations behind the same core path."""
        tb = build_topo_testbed("fat-tree:k=4", 16)
        for nic in tb.nics.values():
            nic.enable_reliability(ReliabilityConfig(window=4))
        accepts = {"node4": [], "node6": []}
        for dst in accepts:
            tb.nics[dst].transport.probes.append(
                lambda kind, peer, seq, now, d=dst: kind == "accept"
                and accepts[d].append(seq))
        handles = []
        for src, dst in (("node0", "node4"), ("node1", "node6")):
            buf = tb.alloc_registered(src, 4096, f"{src}.src")
            for i in range(6):
                out = tb.alloc_registered(dst, 4096, f"{src}.dst{i}")
                handles.append(tb.nics[src].post_put(buf.addr(), 4096, dst,
                                                     out.addr()))
        tb.sim.run()
        assert all(h.delivered.ok for h in handles)
        assert accepts["node4"] == list(range(6))
        assert accepts["node6"] == list(range(6))
        # No spurious recovery traffic despite shared-port queueing: the
        # RTO floor covers contention-free RTT, and queueing never exceeds
        # it in this 2-flow scenario.
        assert tb.nics["node0"].transport.stats["retransmits"] == 0
