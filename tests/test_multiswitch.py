"""Extension: clusters on multi-switch fabrics (GraphTopology).

The paper evaluates a single-switch star; the fabric layer generalizes to
arbitrary switch graphs, and GPU-TN's semantics are topology-agnostic.
These tests run the microbench protocol across a two-switch fabric.
"""

import networkx as nx
import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import default_config
from repro.net.topology import GraphTopology, StarTopology


def two_switch_topology(n_nodes=4):
    """node0,node1 on switch s0; node2,node3 on s1; s0--s1 trunk."""
    g = nx.Graph()
    names = [f"node{i}" for i in range(n_nodes)]
    for i, n in enumerate(names):
        g.add_edge(n, f"s{i * 2 // n_nodes}")
    g.add_edge("s0", "s1")
    return GraphTopology(g, names)


class TestGraphTopologyCluster:
    def test_cluster_accepts_custom_topology(self):
        topo = two_switch_topology()
        cluster = Cluster(n_nodes=4, topology=topo)
        assert cluster.topology is topo

    def test_mismatched_topology_rejected(self):
        topo = StarTopology(["a", "b"])
        with pytest.raises(ValueError, match="node0"):
            Cluster(n_nodes=2, topology=topo)

    def test_same_switch_vs_cross_switch_latency(self):
        """An extra switch + link adds exactly one hop of latency."""
        cluster = Cluster(n_nodes=4, topology=two_switch_topology())
        same = cluster.fabric.uncontended_latency_ns("node0", "node1", 64)
        cross = cluster.fabric.uncontended_latency_ns("node0", "node2", 64)
        net = cluster.config.network
        assert cross - same == net.link_latency_ns + net.switch_latency_ns

    def test_gputn_put_across_switches(self):
        """The full GPU-TN path works unchanged over multiple switches."""
        from repro.api import GpuTnEndpoint, work_group_kernel

        cluster = Cluster(n_nodes=4, topology=two_switch_topology())
        ep = GpuTnEndpoint(cluster.node("node0"))
        target = cluster.node("node3")
        send = cluster.node("node0").host.alloc(128)
        recv = target.host.alloc(128)

        def driver():
            op = yield from ep.trig_put(send, 128, "node3", recv.addr(),
                                        tag=0x77)
            yield from ep.launch(work_group_kernel, n_workgroups=1,
                                 tag_base=0x77, buffers=[send], fill=0x3C)
            delivered = yield ep.wait_delivered(op)
            return delivered.delivered_at

        t = cluster.sim.run_until_event(cluster.spawn(driver()))
        assert (recv.view(np.uint8) == 0x3C).all()
        assert cluster.total_hazards() == 0
        # Must include the two-switch path latency (3 links + 2 switches).
        assert t >= 3 * 100 + 2 * 100

    def test_allreduce_on_two_switch_fabric(self):
        """The ring Allreduce is fabric-agnostic: correct across switches."""
        from repro.collectives.ring import run_ring_allreduce

        topo = two_switch_topology()
        cfg = default_config()
        # run_ring_allreduce builds its own cluster; emulate by running
        # the executors over a custom cluster instead.
        from repro.cluster import Cluster as C
        from repro.collectives.ring import (
            _RingRank, _gputn_rank, allreduce_reference)

        cluster = C(n_nodes=4, config=cfg, topology=topo, trace=False)
        states = [_RingRank(cluster[r], r, 4, 64 * 1024, seed=2)
                  for r in range(4)]
        initial = [s.vector.view(np.float32).copy() for s in states]
        peers = {r: cluster[r] for r in range(4)}
        for r in range(4):
            cluster[r].host._ring_state = states[r]
        procs = [cluster.spawn(_gputn_rank(states[r], peers))
                 for r in range(4)]
        cluster.run()
        for p in procs:
            assert p.ok
        expected = allreduce_reference(initial, 4)
        for s in states:
            assert (s.vector.view(np.float32) == expected).all()
        del run_ring_allreduce
