"""Unit tests for the network fabric (repro.net)."""

import pytest

from repro.config import NetworkConfig
from repro.net import Fabric, Message, StarTopology
from repro.net.packet import MessageKind
from repro.net.topology import GraphTopology
from repro.sim import Simulator


def make_fabric(n=4, **net_kwargs):
    sim = Simulator()
    nodes = [f"n{i}" for i in range(n)]
    net = NetworkConfig(**net_kwargs)
    topo = StarTopology(nodes, net.link_latency_ns, net.switch_latency_ns)
    return sim, Fabric(sim, topo, net)


class TestMessage:
    def test_valid_message(self):
        m = Message(src="a", dst="b", nbytes=64)
        assert m.kind is MessageKind.PUT and m.msg_id > 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src="a", dst="b", nbytes=-1)

    def test_payload_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Message(src="a", dst="b", nbytes=4, payload=b"toolong!")

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(src="a", dst="a", nbytes=4)

    def test_ids_unique(self):
        a = Message(src="a", dst="b", nbytes=0)
        b = Message(src="a", dst="b", nbytes=0)
        assert a.msg_id != b.msg_id


class TestStarTopology:
    def test_path_latency(self):
        topo = StarTopology(["a", "b"], link_latency_ns=100, switch_latency_ns=100)
        assert topo.path_latency_ns("a", "b") == 300
        assert topo.path_latency_ns("a", "a") == 0

    def test_unknown_node_rejected(self):
        topo = StarTopology(["a", "b"])
        with pytest.raises(KeyError):
            topo.path_latency_ns("a", "zz")

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            StarTopology(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StarTopology([])

    def test_hop_count(self):
        topo = StarTopology(["a", "b"])
        assert topo.hop_count("a", "b") == 1
        assert topo.hop_count("b", "b") == 0


class TestGraphTopology:
    def test_two_switch_path(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edges_from([("a", "s1"), ("s1", "s2"), ("s2", "b")])
        topo = GraphTopology(g, ["a", "b"], link_latency_ns=100, switch_latency_ns=100)
        # 3 links + 2 switches.
        assert topo.path_latency_ns("a", "b") == 500
        assert topo.hop_count("a", "b") == 2

    def test_edge_latency_attribute(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "s", latency_ns=10)
        g.add_edge("s", "b", latency_ns=20)
        topo = GraphTopology(g, ["a", "b"], switch_latency_ns=5)
        assert topo.path_latency_ns("a", "b") == 35

    def test_missing_endpoint_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "s")
        with pytest.raises(ValueError):
            GraphTopology(g, ["a", "zzz"])


class TestFabricLatency:
    def test_uncontended_latency_formula(self):
        """Table 2 numbers: 64B message = ser(64) + 2*100 + 100."""
        sim, fabric = make_fabric()
        ev = fabric.transmit(Message(src="n0", dst="n1", nbytes=64))
        delivered = sim.run_until_event(ev)
        expected = fabric.net.serialization_ns(64) + 300
        assert delivered.delivered_at == expected
        assert delivered.delivered_at == fabric.uncontended_latency_ns("n0", "n1", 64)

    def test_zero_byte_message(self):
        sim, fabric = make_fabric()
        ev = fabric.transmit(Message(src="n0", dst="n1", nbytes=0))
        assert sim.run_until_event(ev).delivered_at == 300

    def test_8mb_dominated_by_serialization(self):
        sim, fabric = make_fabric()
        n = 8 * 1024 * 1024
        ev = fabric.transmit(Message(src="n0", dst="n1", nbytes=n))
        delivered = sim.run_until_event(ev)
        # 8 MiB at 12.5 B/ns ~ 671 us >> 300 ns of latency.
        assert delivered.delivered_at == pytest.approx(n / 12.5 + 300, rel=1e-3)

    def test_rx_handler_invoked_at_delivery(self):
        sim, fabric = make_fabric()
        seen = []
        fabric.register_rx("n2", lambda d: seen.append((sim.now, d.message.msg_id)))
        msg = Message(src="n0", dst="n2", nbytes=128)
        ev = fabric.transmit(msg)
        sim.run()
        assert seen == [(ev.value.delivered_at, msg.msg_id)]

    def test_handler_not_called_for_other_nodes(self):
        sim, fabric = make_fabric()
        seen = []
        fabric.register_rx("n3", seen.append)
        fabric.transmit(Message(src="n0", dst="n1", nbytes=8))
        sim.run()
        assert seen == []


class TestFabricContention:
    def test_egress_serializes_same_source(self):
        """Two back-to-back sends from one node share the egress port."""
        sim, fabric = make_fabric()
        n = 12500  # 1000 ns of serialization each
        e1 = fabric.transmit(Message(src="n0", dst="n1", nbytes=n))
        e2 = fabric.transmit(Message(src="n0", dst="n2", nbytes=n))
        sim.run()
        assert e1.value.delivered_at == 1000 + 300
        assert e2.value.delivered_at == 2000 + 300

    def test_ingress_serializes_same_destination(self):
        sim, fabric = make_fabric()
        n = 12500
        e1 = fabric.transmit(Message(src="n0", dst="n3", nbytes=n))
        e2 = fabric.transmit(Message(src="n1", dst="n3", nbytes=n))
        sim.run()
        assert e1.value.delivered_at == 1300
        # Second message's head arrives at t=300 but the ingress port is
        # busy until 1300.
        assert e2.value.delivered_at == 2300

    def test_disjoint_pairs_do_not_contend(self):
        sim, fabric = make_fabric()
        n = 12500
        e1 = fabric.transmit(Message(src="n0", dst="n1", nbytes=n))
        e2 = fabric.transmit(Message(src="n2", dst="n3", nbytes=n))
        sim.run()
        assert e1.value.delivered_at == e2.value.delivered_at == 1300

    def test_in_order_delivery_same_pair(self):
        """A big message sent first must arrive before a small one sent later."""
        sim, fabric = make_fabric()
        big = fabric.transmit(Message(src="n0", dst="n1", nbytes=125000))
        small = fabric.transmit(Message(src="n0", dst="n1", nbytes=64))
        sim.run()
        assert big.value.delivered_at < small.value.delivered_at

    def test_unknown_node_rejected(self):
        sim, fabric = make_fabric()
        with pytest.raises(KeyError):
            fabric.transmit(Message(src="n0", dst="ghost", nbytes=8))

    def test_stats_accumulate(self):
        sim, fabric = make_fabric()
        fabric.transmit(Message(src="n0", dst="n1", nbytes=10))
        fabric.transmit(Message(src="n1", dst="n2", nbytes=20))
        sim.run()
        assert fabric.stats == {"messages": 2, "bytes": 30}


class TestBandwidthInvariant:
    def test_delivery_never_beats_line_rate(self):
        """Property: N bytes can never arrive faster than ser(N) + path."""
        sim, fabric = make_fabric(n=6)
        events = []
        sizes = [64, 1024, 4096, 65536, 1 << 20]
        for i, s in enumerate(sizes):
            src, dst = f"n{i % 3}", f"n{3 + i % 3}"
            events.append((s, src, dst, fabric.transmit(
                Message(src=src, dst=dst, nbytes=s))))
        sim.run()
        for s, src, dst, ev in events:
            assert ev.value.delivered_at >= fabric.uncontended_latency_ns(src, dst, s)
