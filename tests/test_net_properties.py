"""Property-based tests of fabric invariants (DESIGN.md §6, items 6)."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.net import Fabric, Message, StarTopology
from repro.sim import Simulator


def build(n_nodes):
    sim = Simulator()
    nodes = [f"n{i}" for i in range(n_nodes)]
    net = NetworkConfig()
    topo = StarTopology(nodes, net.link_latency_ns, net.switch_latency_ns)
    return sim, Fabric(sim, topo, net)


message_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),      # src
        st.integers(min_value=0, max_value=3),      # dst
        st.integers(min_value=0, max_value=1 << 18),  # size
        st.integers(min_value=0, max_value=5_000),  # inject delay
    ),
    min_size=1, max_size=25,
).map(lambda plan: [(s, d if d != s else (d + 1) % 4, n, t)
                    for s, d, n, t in plan])


@settings(max_examples=60, deadline=None)
@given(plan=message_plan)
def test_property_line_rate_never_beaten(plan):
    """No message arrives faster than serialization + path latency."""
    sim, fabric = build(4)
    events = []

    def inject(src, dst, nbytes):
        events.append((src, dst, nbytes, sim.now,
                       fabric.transmit(Message(src=src, dst=dst, nbytes=nbytes))))

    for s, d, n, t in plan:
        sim.schedule(t, inject, f"n{s}", f"n{d}", n)
    sim.run()
    for src, dst, nbytes, sent, ev in events:
        floor = fabric.uncontended_latency_ns(src, dst, nbytes)
        assert ev.value.delivered_at - sent >= floor


@settings(max_examples=60, deadline=None)
@given(plan=message_plan)
def test_property_in_order_per_pair(plan):
    """Messages between the same (src, dst) pair arrive in send order."""
    sim, fabric = build(4)
    deliveries = defaultdict(list)

    def inject(src, dst, nbytes, seq):
        ev = fabric.transmit(Message(src=src, dst=dst, nbytes=nbytes,
                                     meta={"seq": seq}))
        ev.callbacks.append(
            lambda e: deliveries[(src, dst)].append(
                (e.value.message.meta["seq"], e.value.delivered_at)))

    # Inject in plan order at time 0 so send order is the list order.
    for seq, (s, d, n, _t) in enumerate(plan):
        inject(f"n{s}", f"n{d}", n, seq)
    sim.run()
    for pair, arrivals in deliveries.items():
        seqs = [seq for seq, _ in arrivals]
        times = [t for _, t in arrivals]
        assert seqs == sorted(seqs), f"reordering on {pair}"
        assert times == sorted(times)


@settings(max_examples=40, deadline=None)
@given(
    nbytes=st.integers(min_value=0, max_value=1 << 22),
    n_nodes=st.integers(min_value=2, max_value=8),
)
def test_property_latency_formula_uncontended(nbytes, n_nodes):
    sim, fabric = build(max(n_nodes, 2))
    ev = fabric.transmit(Message(src="n0", dst="n1", nbytes=nbytes))
    delivered = sim.run_until_event(ev)
    net = fabric.net
    assert delivered.delivered_at == net.serialization_ns(nbytes) + 300


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 16),
                      min_size=2, max_size=10))
def test_property_total_egress_respects_bandwidth(sizes):
    """One sender: last delivery >= total bytes / line rate."""
    sim, fabric = build(3)
    last = None
    for i, n in enumerate(sizes):
        last = fabric.transmit(Message(src="n0", dst=f"n{1 + i % 2}", nbytes=n))
    sim.run()
    total_ser = sum(fabric.net.serialization_ns(n) for n in sizes)
    assert last.value.delivered_at >= total_ser
