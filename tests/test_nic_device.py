"""Integration tests for the NIC device (repro.nic.device) over the fabric."""

import numpy as np
import pytest

from repro.memory import Agent
from repro.nic.lookup import TriggerListFull

from conftest import build_nic_testbed


class TestImmediatePut:
    def test_put_moves_bytes(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 256, "src")
        dst = tb.alloc_registered("n1", 256, "dst")
        src.view(np.uint8)[:] = np.arange(256, dtype=np.uint8)
        tb.mems["n0"].record_write(0, Agent.CPU, src)
        h = tb.nics["n0"].post_put(src.addr(), 256, "n1", dst.addr())
        tb.sim.run_until_event(h.delivered)
        assert (dst.view(np.uint8) == np.arange(256, dtype=np.uint8)).all()

    def test_put_latency_includes_nic_processing(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        delivered = tb.sim.run_until_event(h.delivered)
        nc = tb.config.nic
        wire = tb.fabric.uncontended_latency_ns("n0", "n1", 64)
        assert delivered.delivered_at == nc.command_process_ns + nc.dma_setup_ns + wire

    def test_local_completion_before_delivery_for_big_messages(self, nic_testbed):
        tb = nic_testbed
        n = 1 << 20
        src = tb.alloc_registered("n0", n, "src")
        dst = tb.alloc_registered("n1", n, "dst")
        h = tb.nics["n0"].post_put(src.addr(), n, "n1", dst.addr())
        local_t = tb.sim.run_until_event(h.local)
        tb.sim.run_until_event(h.delivered)
        assert local_t < h.delivered.value.delivered_at

    def test_local_flag_written(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        flag = tb.alloc_registered("n0", 4, "flag")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(),
                                   local_flag=(flag, 0))
        tb.sim.run_until_event(h.local)
        assert flag.view(np.uint32)[0] == 1

    def test_unregistered_source_fails(self, nic_testbed):
        tb = nic_testbed
        src = tb.spaces["n0"].alloc(64)  # not registered
        dst = tb.alloc_registered("n1", 64)
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        with pytest.raises(Exception):
            tb.sim.run()

    def test_rx_flag_and_watch(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        flag = tb.alloc_registered("n1", 4, "rxflag")
        tb.nics["n1"].expose_rx_flag(77, (flag, 0))
        watch = tb.nics["n1"].watch_rx(77)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), wire_tag=77)
        tb.sim.run_until_event(watch)
        tb.sim.run()
        assert flag.view(np.uint32)[0] == 1

    def test_rx_flag_counts_multiple_puts(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        flag = tb.alloc_registered("n1", 4)
        tb.nics["n1"].expose_rx_flag(5, (flag, 0))
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), wire_tag=5)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), wire_tag=5)
        tb.sim.run()
        assert flag.view(np.uint32)[0] == 2


class TestDeferredPutDoorbell:
    """The GDS path: CPU pre-posts, doorbell initiates later."""

    def test_deferred_does_not_start_until_doorbell(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), deferred=True)
        tb.sim.run()
        assert not h.delivered.triggered
        tb.nics["n0"].ring_doorbell(h)
        tb.sim.run_until_event(h.delivered)

    def test_staged_doorbell_is_faster_than_immediate_post(self, nic_testbed):
        """A staged op skips command decode + DMA setup at doorbell time."""
        tb = nic_testbed
        nc = tb.config.nic
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        h_imm = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        t_imm = tb.sim.run_until_event(h_imm.delivered).delivered_at
        h_def = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr(), deferred=True)
        t0 = tb.sim.now
        tb.nics["n0"].ring_doorbell(h_def)
        t_def = tb.sim.run_until_event(h_def.delivered).delivered_at - t0
        assert t_def == t_imm - nc.command_process_ns - nc.dma_setup_ns


class TestTwoSided:
    def test_send_matches_posted_recv(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 128)
        dst = tb.alloc_registered("n1", 128)
        src.view(np.float32)[:] = 2.5
        recv = tb.nics["n1"].post_recv(tag=11, local_addr=dst.addr(), nbytes=128)
        tb.nics["n0"].post_put(src.addr(), 128, "n1", remote_addr=None,
                               wire_tag=11, kind="send")
        tb.sim.run_until_event(recv.complete)
        assert (dst.view(np.float32) == 2.5).all()

    def test_unexpected_message_queued_until_recv(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        src.view(np.uint8)[:] = 9
        tb.nics["n0"].post_put(src.addr(), 64, "n1", remote_addr=None,
                               wire_tag=3, kind="send")
        tb.sim.run()  # message arrives with no recv posted
        recv = tb.nics["n1"].post_recv(tag=3, local_addr=dst.addr(), nbytes=64)
        tb.sim.run_until_event(recv.complete)
        assert (dst.view(np.uint8) == 9).all()

    def test_tag_mismatch_does_not_match(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        recv = tb.nics["n1"].post_recv(tag=1, local_addr=dst.addr(), nbytes=64)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", remote_addr=None,
                               wire_tag=2, kind="send")
        tb.sim.run()
        assert not recv.complete.triggered

    def test_recv_overflow_fails(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 128)
        dst = tb.alloc_registered("n1", 64)
        recv = tb.nics["n1"].post_recv(tag=1, local_addr=dst.addr(), nbytes=64)
        tb.nics["n0"].post_put(src.addr(), 128, "n1", remote_addr=None,
                               wire_tag=1, kind="send")
        with pytest.raises(ValueError, match="overflow"):
            tb.sim.run_until_event(recv.complete)

    def test_multiple_recvs_fifo(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 8)
        d1 = tb.alloc_registered("n1", 8)
        d2 = tb.alloc_registered("n1", 8)
        r1 = tb.nics["n1"].post_recv(tag=1, local_addr=d1.addr(), nbytes=8)
        r2 = tb.nics["n1"].post_recv(tag=1, local_addr=d2.addr(), nbytes=8)
        src.view(np.uint8)[:] = 1
        tb.nics["n0"].post_put(src.addr(), 8, "n1", None, wire_tag=1, kind="send")
        tb.sim.run_until_event(r1.complete)
        src.view(np.uint8)[:] = 2
        tb.nics["n0"].post_put(src.addr(), 8, "n1", None, wire_tag=1, kind="send")
        tb.sim.run_until_event(r2.complete)
        assert d1.view(np.uint8)[0] == 1 and d2.view(np.uint8)[0] == 2


class TestGet:
    def test_get_fetches_remote_bytes(self, nic_testbed):
        tb = nic_testbed
        local = tb.alloc_registered("n0", 64)
        remote = tb.alloc_registered("n1", 64)
        remote.view(np.uint8)[:] = 0xAB
        h = tb.nics["n0"].post_get(local.addr(), 64, "n1", remote.addr())
        tb.sim.run_until_event(h.complete)
        assert (local.view(np.uint8) == 0xAB).all()

    def test_get_roundtrip_latency(self, nic_testbed):
        tb = nic_testbed
        local = tb.alloc_registered("n0", 64)
        remote = tb.alloc_registered("n1", 64)
        h = tb.nics["n0"].post_get(local.addr(), 64, "n1", remote.addr())
        tb.sim.run_until_event(h.complete)
        # Must cover two path traversals at minimum.
        assert tb.sim.now >= 2 * tb.fabric.topology.path_latency_ns("n0", "n1")


class TestGpuTriggeredPath:
    """End-to-end: MMIO tag write -> FIFO -> trigger list -> wire."""

    def test_mmio_trigger_fires_put(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        src.view(np.uint8)[:] = 0x11
        nic = tb.nics["n0"]
        entry = nic.register_triggered_put(tag=1, threshold=1,
                                           local_addr=src.addr(), nbytes=64,
                                           target="n1", remote_addr=dst.addr())
        nic.mmio_write(nic.trigger_address, 1)
        handle = nic.handle_for(entry)
        tb.sim.run_until_event(handle.delivered)
        assert (dst.view(np.uint8) == 0x11).all()

    def test_trigger_latency_components(self, nic_testbed):
        tb = nic_testbed
        nc = tb.config.nic
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        nic = tb.nics["n0"]
        entry = nic.register_triggered_put(tag=1, threshold=1,
                                           local_addr=src.addr(), nbytes=64,
                                           target="n1", remote_addr=dst.addr())
        nic.mmio_write(nic.trigger_address, 1)
        delivered = tb.sim.run_until_event(nic.handle_for(entry).delivered)
        wire = tb.fabric.uncontended_latency_ns("n0", "n1", 64)
        # MMIO + command + DMA setup + wire; FIFO pop charged after fire.
        expected = nc.doorbell_mmio_ns + nc.command_process_ns + nc.dma_setup_ns + wire
        assert delivered.delivered_at == expected

    def test_threshold_accumulates_across_mmio_writes(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        nic = tb.nics["n0"]
        entry = nic.register_triggered_put(tag=4, threshold=3,
                                           local_addr=src.addr(), nbytes=64,
                                           target="n1", remote_addr=dst.addr())
        for _ in range(2):
            nic.mmio_write(nic.trigger_address, 4)
        tb.sim.run()
        assert not nic.handle_for(entry).delivered.triggered
        nic.mmio_write(nic.trigger_address, 4)
        tb.sim.run_until_event(nic.handle_for(entry).delivered)

    def test_relaxed_sync_gpu_first(self, nic_testbed):
        """GPU triggers before the CPU registers: the put still happens."""
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        src.view(np.uint8)[:] = 0x77
        nic = tb.nics["n0"]
        nic.mmio_write(nic.trigger_address, 9)
        tb.sim.run()  # trigger absorbed into a placeholder
        entry = nic.register_triggered_put(tag=9, threshold=1,
                                           local_addr=src.addr(), nbytes=64,
                                           target="n1", remote_addr=dst.addr())
        tb.sim.run_until_event(nic.handle_for(entry).delivered)
        assert (dst.view(np.uint8) == 0x77).all()

    def test_mmio_outside_window_rejected(self, nic_testbed):
        tb = nic_testbed
        with pytest.raises(ValueError, match="outside trigger window"):
            tb.nics["n0"].mmio_write(0x1234, 1)

    def test_associative_capacity_respected(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        nic = tb.nics["n0"]
        for tag in range(tb.config.nic.max_trigger_entries):
            nic.register_triggered_put(tag=tag, threshold=10,
                                       local_addr=src.addr(), nbytes=64,
                                       target="n1", remote_addr=dst.addr())
        with pytest.raises(TriggerListFull):
            nic.register_triggered_put(tag=999, threshold=1,
                                       local_addr=src.addr(), nbytes=64,
                                       target="n1", remote_addr=dst.addr())

    def test_trigger_storm_all_fire(self, nic_testbed):
        """Many tags in quick succession all fire exactly once."""
        tb = nic_testbed
        nic = tb.nics["n0"]
        n = 16
        handles = []
        for tag in range(n):
            src = tb.alloc_registered("n0", 8)
            dst = tb.alloc_registered("n1", 8)
            e = nic.register_triggered_put(tag=tag, threshold=1,
                                           local_addr=src.addr(), nbytes=8,
                                           target="n1", remote_addr=dst.addr())
            handles.append(nic.handle_for(e))
        for tag in range(n):
            nic.mmio_write(nic.trigger_address, tag)
        tb.sim.run()
        assert all(h.delivered.triggered for h in handles)
        assert nic.trigger_list.stats["fired"] == n


class TestMemoryModelIntegration:
    def test_unfenced_gpu_write_flags_hazard(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        tb.mems["n0"].record_write(0, Agent.GPU, src)  # no release!
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        tb.sim.run()
        assert tb.mems["n0"].hazard_count() >= 1

    def test_released_gpu_write_is_clean(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        from repro.memory import Scope

        tb.mems["n0"].record_write(0, Agent.GPU, src)
        tb.mems["n0"].release(5, Agent.GPU, Scope.SYSTEM)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        tb.sim.run()
        assert tb.mems["n0"].hazard_count() == 0
