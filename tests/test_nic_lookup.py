"""Unit tests for trigger-list lookup structures (repro.nic.lookup)."""

import pytest

from repro.nic import (
    AssociativeLookup,
    HashLookup,
    LinkedListLookup,
    TriggerListFull,
    make_lookup,
)
from repro.nic.triggered import TriggerEntry

ALL_KINDS = ["linked-list", "associative", "hash"]


def entry(tag):
    return TriggerEntry(tag=tag)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonBehaviour:
    def test_insert_find(self, kind):
        lk = make_lookup(kind)
        e = entry(7)
        lk.insert(e)
        assert lk.find(7) is e
        assert lk.find(8) is None

    def test_remove(self, kind):
        lk = make_lookup(kind)
        e = entry(3)
        lk.insert(e)
        lk.remove(e)
        assert lk.find(3) is None
        assert len(lk) == 0

    def test_len_and_iter(self, kind):
        lk = make_lookup(kind, capacity=None if kind != "associative" else 16)
        entries = [entry(i) for i in range(5)]
        for e in entries:
            lk.insert(e)
        assert len(lk) == 5
        assert set(e.tag for e in lk) == set(range(5))

    def test_cost_positive(self, kind):
        lk = make_lookup(kind)
        lk.insert(entry(1))
        lk.find(1)
        assert lk.cost_ns() > 0


class TestLinkedList:
    def test_cost_grows_with_position(self):
        lk = LinkedListLookup()
        for i in range(20):
            lk.insert(entry(i))
        lk.find(0)
        early = lk.cost_ns()
        lk.find(19)
        late = lk.cost_ns()
        assert late > early

    def test_miss_scans_whole_list(self):
        lk = LinkedListLookup()
        for i in range(10):
            lk.insert(entry(i))
        lk.find(999)
        assert lk.cost_ns() == lk.base_ns + 10 * lk.step_ns


class TestAssociative:
    def test_constant_cost(self):
        lk = AssociativeLookup(capacity=16)
        for i in range(16):
            lk.insert(entry(i))
        lk.find(0)
        a = lk.cost_ns()
        lk.find(15)
        b = lk.cost_ns()
        assert a == b

    def test_capacity_enforced(self):
        lk = AssociativeLookup(capacity=2)
        lk.insert(entry(0))
        lk.insert(entry(1))
        with pytest.raises(TriggerListFull):
            lk.insert(entry(2))

    def test_duplicate_tag_rejected(self):
        lk = AssociativeLookup(capacity=4)
        lk.insert(entry(5))
        with pytest.raises(ValueError):
            lk.insert(entry(5))

    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            AssociativeLookup(capacity=None)


class TestHash:
    def test_many_entries_cheap(self):
        lk = HashLookup(n_buckets=64)
        for i in range(256):
            lk.insert(entry(i))
        lk.find(200)
        # Expected chain length 4; far below a 256-long list walk.
        assert lk.cost_ns() < LinkedListLookup.base_ns + 100 * LinkedListLookup.step_ns

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            HashLookup(n_buckets=0)


class TestCachedLookup:
    """Section 3.3's main-memory trigger list with a NIC-resident cache."""

    def _cached(self, cache_entries=2):
        from repro.nic import CachedLookup, HashLookup

        return CachedLookup(HashLookup(), cache_entries=cache_entries)

    def test_first_touch_misses_then_hits(self):
        lk = self._cached()
        e = entry(1)
        lk.insert(e)          # insert warms the cache
        lk.find(1)
        assert lk.stats == {"hits": 1, "misses": 0}
        hot = lk.cost_ns()
        # Evict by touching two other tags.
        lk.insert(entry(2))
        lk.insert(entry(3))
        lk.find(1)
        assert lk.stats["misses"] == 1
        assert lk.cost_ns() == hot + lk.miss_ns

    def test_lru_keeps_hot_tags(self):
        lk = self._cached(cache_entries=2)
        for t in (1, 2, 3):
            lk.insert(entry(t))
        lk.find(2)  # miss (evicted by 3's insert? order: cache holds 2,3)
        lk.find(2)  # now certainly hot
        assert lk.cost_ns() < lk.miss_ns

    def test_misses_do_not_apply_to_absent_tags(self):
        lk = self._cached()
        lk.find(99)
        assert lk.stats == {"hits": 0, "misses": 0}

    def test_remove_evicts(self):
        lk = self._cached()
        e = entry(5)
        lk.insert(e)
        lk.remove(e)
        assert lk.find(5) is None
        assert len(lk) == 0

    def test_factory_spelling(self):
        from repro.nic import CachedLookup, make_lookup

        lk = make_lookup("cached:hash", capacity=8)
        assert isinstance(lk, CachedLookup)
        assert lk.cache_entries == 8

    def test_bad_cache_size_rejected(self):
        from repro.nic import CachedLookup, HashLookup

        with pytest.raises(ValueError):
            CachedLookup(HashLookup(), cache_entries=0)

    def test_nic_runs_with_cached_lookup(self):
        from repro.config import NicConfig, default_config

        from conftest import build_nic_testbed

        cfg = default_config().with_(
            nic=NicConfig(trigger_lookup="cached:hash"))
        tb = build_nic_testbed(config=cfg)
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        nic = tb.nics["n0"]
        e = nic.register_triggered_put(tag=1, threshold=1,
                                       local_addr=src.addr(), nbytes=8,
                                       target="n1", remote_addr=dst.addr())
        nic.mmio_write(nic.trigger_address, 1)
        tb.sim.run_until_event(nic.handle_for(e).delivered)


def test_factory_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown trigger lookup"):
        make_lookup("btree")


def test_factory_kinds():
    assert isinstance(make_lookup("linked-list"), LinkedListLookup)
    assert isinstance(make_lookup("associative"), AssociativeLookup)
    assert isinstance(make_lookup("hash"), HashLookup)
