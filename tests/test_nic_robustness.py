"""Failure-injection and robustness tests for the NIC device."""

import numpy as np
import pytest

from repro.config import NicConfig, default_config
from repro.memory import Agent

from conftest import build_nic_testbed


class TestTriggerFifoOverflow:
    def test_overflow_surfaces_loudly(self):
        cfg = default_config().with_(nic=NicConfig(trigger_fifo_depth=4))
        tb = build_nic_testbed(config=cfg)
        nic = tb.nics["n0"]
        # A burst far beyond the FIFO depth, all landing at once while
        # the pump can only drain one per lookup interval.
        for i in range(64):
            nic.mmio_write(nic.trigger_address, i)
        with pytest.raises(RuntimeError, match="FIFO overflow"):
            tb.sim.run()

    def test_deep_fifo_absorbs_bursts(self):
        """Paper §3.3: the NIC must absorb 'triggers from potentially
        thousands of GPU threads in quick succession'."""
        tb = build_nic_testbed()
        nic = tb.nics["n0"]
        src = tb.alloc_registered("n0", 8)
        dst = tb.alloc_registered("n1", 8)
        nic.register_triggered_put(tag=0, threshold=2000,
                                   local_addr=src.addr(), nbytes=8,
                                   target="n1", remote_addr=dst.addr())
        for _ in range(2000):
            nic.mmio_write(nic.trigger_address, 0)
        tb.sim.run()
        entry = nic.trigger_list.fired_log[0]
        assert entry.counter == 2000 and entry.fired


class TestDmaErrorPaths:
    def test_unregistered_remote_address_fails(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        bad_dst = tb.spaces["n1"].alloc(64)  # never registered
        tb.nics["n0"].post_put(src.addr(), 64, "n1", bad_dst.addr())
        with pytest.raises(Exception, match="unregistered"):
            tb.sim.run()

    def test_unmapped_remote_address_fails(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        tb.nics["n0"].post_put(src.addr(), 64, "n1", 0xDEAD_BEEF)
        with pytest.raises(IndexError):
            tb.sim.run()

    def test_oversized_put_from_small_buffer_fails(self, nic_testbed):
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 4096)
        tb.nics["n0"].post_put(src.addr(), 4096, "n1", dst.addr())
        with pytest.raises(IndexError):
            tb.sim.run()


class TestZeroByteOperations:
    def test_zero_byte_put_completes(self, nic_testbed):
        """Zero-byte puts are legal RDMA (pure synchronization)."""
        tb = nic_testbed
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        flag = tb.alloc_registered("n1", 4)
        tb.nics["n1"].expose_rx_flag(9, (flag, 0))
        h = tb.nics["n0"].post_put(src.addr(), 0, "n1", dst.addr(), wire_tag=9)
        tb.sim.run_until_event(h.delivered)
        tb.sim.run()
        assert flag.view(np.uint32)[0] == 1
        assert (dst.view(np.uint8) == 0).all()  # untouched


class TestManyConcurrentFlows:
    def test_all_to_all_burst(self):
        """Every node puts to every other node simultaneously; all
        payloads land intact (stress of port contention + rx dispatch)."""
        tb = build_nic_testbed(n_nodes=5)
        handles = []
        bufs = {}
        for i, src_name in enumerate(tb.nodes):
            for j, dst_name in enumerate(tb.nodes):
                if i == j:
                    continue
                src = tb.alloc_registered(src_name, 256)
                dst = tb.alloc_registered(dst_name, 256)
                src.view(np.uint8)[:] = 16 * i + j
                tb.mems[src_name].record_write(0, Agent.CPU, src)
                h = tb.nics[src_name].post_put(src.addr(), 256, dst_name,
                                               dst.addr())
                handles.append(h)
                bufs[(i, j)] = dst
        tb.sim.run()
        assert all(h.delivered.triggered for h in handles)
        for (i, j), dst in bufs.items():
            assert (dst.view(np.uint8) == 16 * i + j).all()

    def test_interleaved_triggered_and_immediate(self, nic_testbed):
        """Triggered and immediate operations share the NIC cleanly."""
        tb = nic_testbed
        nic = tb.nics["n0"]
        outcomes = []
        for k in range(6):
            src = tb.alloc_registered("n0", 16)
            dst = tb.alloc_registered("n1", 16)
            src.view(np.uint8)[:] = k + 1
            if k % 2 == 0:
                entry = nic.register_triggered_put(
                    tag=k, threshold=1, local_addr=src.addr(), nbytes=16,
                    target="n1", remote_addr=dst.addr())
                nic.mmio_write(nic.trigger_address, k)
                outcomes.append((nic.handle_for(entry), dst, k + 1))
            else:
                h = nic.post_put(src.addr(), 16, "n1", dst.addr())
                outcomes.append((h, dst, k + 1))
        tb.sim.run()
        for h, dst, expect in outcomes:
            assert h.delivered.triggered
            assert (dst.view(np.uint8) == expect).all()
