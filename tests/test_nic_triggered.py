"""Tests for triggered-operation semantics (repro.nic.triggered).

Includes the property-based test of the paper's central hardware
invariant: an operation fires exactly once, when and only when its
counter reaches the threshold, under *any* interleaving of CPU
registration and GPU trigger writes (Section 3.2 relaxed synchronization).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic import LinkedListLookup, NetworkOp, TriggerList
from repro.nic.triggered import TriggerEntry


def make_list(fired):
    return TriggerList(LinkedListLookup(), on_fire=fired.append)


def op(n=64):
    return NetworkOp(kind="put", local_addr=0x1000, nbytes=n, target="n1",
                     remote_addr=0x2000)


class TestNetworkOp:
    def test_valid(self):
        assert op().kind == "put"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            NetworkOp(kind="teleport", local_addr=0, nbytes=1, target="x")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkOp(kind="put", local_addr=0, nbytes=-1, target="x")


class TestRegisterThenTrigger:
    def test_fires_at_threshold(self):
        fired = []
        tl = make_list(fired)
        tl.register(op(), tag=1, threshold=3)
        tl.trigger(1)
        tl.trigger(1)
        assert fired == []
        tl.trigger(1)
        assert len(fired) == 1 and fired[0].tag == 1

    def test_threshold_one_fires_immediately_on_trigger(self):
        fired = []
        tl = make_list(fired)
        tl.register(op(), tag=9, threshold=1)
        tl.trigger(9)
        assert len(fired) == 1

    def test_extra_triggers_do_not_refire(self):
        fired = []
        tl = make_list(fired)
        tl.register(op(), tag=1, threshold=1)
        for _ in range(5):
            tl.trigger(1)
        assert len(fired) == 1

    def test_independent_tags(self):
        fired = []
        tl = make_list(fired)
        tl.register(op(), tag=1, threshold=1)
        tl.register(op(), tag=2, threshold=2)
        tl.trigger(2)
        assert fired == []
        tl.trigger(1)
        assert [e.tag for e in fired] == [1]
        tl.trigger(2)
        assert [e.tag for e in fired] == [1, 2]

    def test_zero_threshold_rejected(self):
        tl = make_list([])
        with pytest.raises(ValueError):
            tl.register(op(), tag=1, threshold=0)

    def test_duplicate_pending_registration_rejected(self):
        tl = make_list([])
        tl.register(op(), tag=1, threshold=2)
        with pytest.raises(ValueError, match="already registered"):
            tl.register(op(), tag=1, threshold=2)

    def test_fired_tag_requires_free_before_reuse(self):
        fired = []
        tl = make_list(fired)
        entry = tl.register(op(), tag=1, threshold=1)
        tl.trigger(1)
        with pytest.raises(ValueError, match="already fired"):
            tl.register(op(), tag=1, threshold=1)
        tl.free(entry)
        tl.register(op(), tag=1, threshold=1)
        tl.trigger(1)
        assert len(fired) == 2


class TestRelaxedSynchronization:
    """Section 3.2: GPU triggers before CPU registration."""

    def test_early_trigger_allocates_placeholder(self):
        fired = []
        tl = make_list(fired)
        entry = tl.trigger(42)
        assert entry.is_placeholder and entry.counter == 1
        assert fired == []
        assert tl.stats["placeholders"] == 1

    def test_registration_adopts_placeholder_counter(self):
        fired = []
        tl = make_list(fired)
        tl.trigger(7)
        tl.trigger(7)
        tl.register(op(), tag=7, threshold=3)
        assert fired == []
        tl.trigger(7)
        assert len(fired) == 1

    def test_late_registration_fires_immediately_when_met(self):
        fired = []
        tl = make_list(fired)
        for _ in range(3):
            tl.trigger(5)
        tl.register(op(), tag=5, threshold=3)
        assert len(fired) == 1

    def test_late_registration_overshoot_fires_once(self):
        fired = []
        tl = make_list(fired)
        for _ in range(10):
            tl.trigger(5)
        tl.register(op(), tag=5, threshold=3)
        assert len(fired) == 1

    def test_placeholder_never_fires_without_registration(self):
        fired = []
        tl = make_list(fired)
        for _ in range(100):
            tl.trigger(1)
        assert fired == []


class TestEntryProperties:
    def test_ready_logic(self):
        e = TriggerEntry(tag=1)
        assert e.is_placeholder and not e.ready
        e.op, e.threshold = op(), 2
        assert e.armed and not e.ready
        e.counter = 2
        assert e.ready
        e.fired = True
        assert not e.ready


@settings(max_examples=200, deadline=None)
@given(
    threshold=st.integers(min_value=1, max_value=8),
    n_triggers=st.integers(min_value=0, max_value=12),
    register_position=st.integers(min_value=0, max_value=12),
)
def test_property_fires_exactly_once_iff_threshold_met(
    threshold, n_triggers, register_position
):
    """For any interleaving (registration inserted at any point in the
    trigger-write stream), the op fires exactly once iff the total trigger
    count reaches the threshold, and never before."""
    fired = []
    tl = make_list(fired)
    register_position = min(register_position, n_triggers)
    seen = 0
    registered = False

    def check():
        expect = 1 if registered and seen >= threshold else 0
        assert len(fired) == expect

    for i in range(n_triggers):
        if i == register_position:
            tl.register(op(), tag=1, threshold=threshold)
            registered = True
            check()
        tl.trigger(1)
        seen += 1
        check()
    if not registered:
        tl.register(op(), tag=1, threshold=threshold)
        registered = True
        check()
    # Exhaustive final condition.
    assert len(fired) == (1 if seen >= threshold else 0)


@settings(max_examples=100, deadline=None)
@given(
    tags=st.lists(st.integers(min_value=0, max_value=5), max_size=40),
    thresholds=st.dictionaries(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=6),
        min_size=6, max_size=6,
    ),
)
def test_property_multi_tag_independence(tags, thresholds):
    """Counters never leak between tags: each tag fires iff its own count
    reaches its own threshold."""
    fired = []
    tl = make_list(fired)
    for tag, threshold in thresholds.items():
        tl.register(op(), tag=tag, threshold=threshold)
    for tag in tags:
        tl.trigger(tag)
    counts = {t: tags.count(t) for t in thresholds}
    expected = sorted(t for t, thr in thresholds.items() if counts[t] >= thr)
    assert sorted(e.tag for e in fired) == expected


class TestFreeLifecycle:
    """free() consumes fired entries only, and keeps fired_log bounded."""

    def test_free_fired_entry_releases_slot(self):
        fired = []
        tl = make_list(fired)
        entry = tl.register(op(), tag=1, threshold=1)
        tl.trigger(1)
        tl.free(entry)
        assert tl.entry(1) is None
        assert tl.stats["freed"] == 1

    def test_free_armed_entry_raises(self):
        tl = make_list([])
        entry = tl.register(op(), tag=1, threshold=2)
        tl.trigger(1)  # counter below threshold: still pending
        with pytest.raises(ValueError, match="has not fired"):
            tl.free(entry)
        # The pending operation must survive the rejected free.
        assert tl.entry(1) is entry
        tl.trigger(1)
        assert tl.entry(1).fired

    def test_free_placeholder_raises(self):
        tl = make_list([])
        placeholder = tl.trigger(99)
        with pytest.raises(ValueError, match="placeholder"):
            tl.free(placeholder)
        assert tl.entry(99) is placeholder

    def test_double_free_raises_via_lookup(self):
        fired = []
        tl = make_list(fired)
        entry = tl.register(op(), tag=1, threshold=1)
        tl.trigger(1)
        tl.free(entry)
        with pytest.raises(ValueError):
            tl.free(entry)

    def test_fired_log_purges_freed_entries(self):
        """A register/fire/free loop (persistent-kernel steady state) must
        not grow fired_log unboundedly."""
        fired = []
        tl = make_list(fired)
        for i in range(1000):
            entry = tl.register(op(), tag=1, threshold=1)
            tl.trigger(1)
            tl.free(entry)
            assert len(tl.fired_log) <= 2
        assert tl.stats["fired"] == tl.stats["freed"] == 1000

    def test_fired_log_keeps_unfreed_entries(self):
        fired = []
        tl = make_list(fired)
        keep = tl.register(op(), tag=1, threshold=1)
        tl.trigger(1)
        for i in range(50):
            entry = tl.register(op(), tag=2, threshold=1)
            tl.trigger(2)
            tl.free(entry)
        assert keep in tl.fired_log and not keep.freed
        assert all(not e.freed for e in tl.fired_log)

    def test_free_notifies_observers(self):
        seen = []
        tl = make_list([])
        tl.observers.append(lambda kind, entry: seen.append((kind, entry.tag)))
        entry = tl.register(op(), tag=3, threshold=1)
        tl.trigger(3)
        tl.free(entry)
        assert seen == [("register", 3), ("trigger", 3), ("fire", 3),
                        ("free", 3)]


@settings(max_examples=100, deadline=None)
@given(
    rounds=st.integers(min_value=1, max_value=20),
    threshold=st.integers(min_value=1, max_value=4),
    early_triggers=st.integers(min_value=0, max_value=4),
)
def test_property_register_fire_free_roundtrip(rounds, threshold,
                                               early_triggers):
    """A tag can be re-registered after free for any number of rounds;
    freeing before the fire always raises and drops nothing."""
    fired = []
    tl = make_list(fired)
    for r in range(rounds):
        for _ in range(min(early_triggers, threshold - 1)):
            tl.trigger(1)  # placeholder path (relaxed synchronization)
        entry = tl.register(op(), tag=1, threshold=threshold)
        while not entry.fired:
            with pytest.raises(ValueError):
                tl.free(entry)
            tl.trigger(1)
        tl.free(entry)
        assert tl.entry(1) is None
        assert len(fired) == r + 1
        assert len(tl.fired_log) <= 2
    assert tl.stats["fired"] == tl.stats["freed"] == rounds
