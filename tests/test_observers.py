"""The Observers bundle and the execute()/run() deprecation shims."""

import warnings

import pytest

from repro.apps.microbench import MicrobenchExperiment
from repro.config import FaultConfig, ReliabilityConfig
from repro.metrics import MetricsRegistry
from repro.runtime import Observers

PARAMS = {"strategy": "gputn"}


class TestCoerce:
    def test_none_passes_through(self):
        assert Observers.coerce(None) is None

    def test_observers_passes_through(self):
        obs = Observers()
        assert Observers.coerce(obs) is obs

    def test_registry_becomes_metrics(self):
        reg = MetricsRegistry()
        obs = Observers.coerce(reg)
        assert obs.metrics is reg and obs.instruments == ()

    def test_callable_becomes_instrument(self):
        fn = lambda cluster: None
        obs = Observers.coerce(fn)
        assert obs.instruments == (fn,)

    def test_iterable_becomes_instruments(self):
        fns = [lambda c: None, lambda c: None]
        obs = Observers.coerce(fns)
        assert obs.instruments == tuple(fns)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            Observers.coerce(42)

    def test_non_callable_instrument_rejected(self):
        with pytest.raises(TypeError, match="not callable"):
            Observers(instruments=("nope",))


class TestArm:
    def test_empty_bundle_is_invisible(self):
        baseline = MicrobenchExperiment().run(PARAMS)
        armed = MicrobenchExperiment().execute(
            PARAMS, observers=Observers()).record
        assert armed.to_json() == baseline.to_json()

    def test_metrics_true_builds_registry(self):
        execution = MicrobenchExperiment().execute(
            PARAMS, observers=Observers(metrics=True))
        assert execution.record.telemetry["counters"]["sim.events"] > 0

    def test_metrics_registry_collects(self):
        reg = MetricsRegistry()
        execution = MicrobenchExperiment().execute(
            PARAMS, observers=Observers(metrics=reg))
        assert execution.cluster.metrics is reg
        assert execution.record.telemetry == reg.dump()

    def test_instruments_run_in_order_on_cluster(self):
        seen = []
        MicrobenchExperiment().execute(PARAMS, observers=Observers(
            instruments=(lambda c: seen.append(("a", c)),
                         lambda c: seen.append(("b", c)))))
        assert [tag for tag, _ in seen] == ["a", "b"]
        assert seen[0][1] is seen[1][1]

    def test_reliability_armed_before_traffic(self):
        execution = MicrobenchExperiment().execute(
            PARAMS, observers=Observers(reliability=ReliabilityConfig()))
        nic = execution.cluster[0].nic
        assert nic.transport is not None
        assert execution.record.transport  # counters flowed

    def test_faults_config_builds_seeded_plan(self):
        execution = MicrobenchExperiment().execute(
            PARAMS, observers=Observers(
                faults=FaultConfig(), fault_seed=3,
                reliability=True))
        assert execution.cluster.fabric.interposer is not None


class TestLegacyKwargsRemoved:
    """The PR-5 ``instrument=``/``metrics=`` shims are gone: ``observers=``
    is the only spelling, and the old keywords fail loudly."""

    def test_execute_instrument_kwarg_rejected(self):
        with pytest.raises(TypeError):
            MicrobenchExperiment().execute(PARAMS, instrument=lambda c: None)

    def test_execute_metrics_kwarg_rejected(self):
        with pytest.raises(TypeError):
            MicrobenchExperiment().execute(PARAMS, metrics=MetricsRegistry())

    def test_run_metrics_kwarg_rejected(self):
        with pytest.raises(TypeError):
            MicrobenchExperiment().run(PARAMS, metrics=MetricsRegistry())

    def test_merged_with_shim_gone(self):
        assert not hasattr(Observers, "merged_with")

    def test_observers_keyword_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MicrobenchExperiment().execute(
                PARAMS, observers=Observers(metrics=MetricsRegistry()))
