"""Tests for NIC-offloaded collectives (repro.collectives.offload)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.collectives.offload import (
    nic_barrier,
    nic_broadcast,
    tree_children,
    tree_parent,
)


class TestTreeShape:
    def test_small_trees(self):
        assert tree_children(0, 1) == []
        assert tree_children(0, 2) == [1]
        assert tree_children(0, 8) == [1, 2, 4]
        assert tree_children(2, 8) == [3]
        assert tree_children(4, 8) == [5, 6]
        assert tree_children(1, 8) == []

    def test_parent(self):
        assert tree_parent(1) == 0
        assert tree_parent(6) == 4
        assert tree_parent(7) == 6
        with pytest.raises(ValueError):
            tree_parent(0)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64))
    def test_property_tree_is_spanning(self, n):
        """Every rank is reachable from the root exactly once."""
        seen = {0}
        frontier = [0]
        while frontier:
            r = frontier.pop()
            for c in tree_children(r, n):
                assert c not in seen, "duplicate tree edge"
                seen.add(c)
                frontier.append(c)
        assert seen == set(range(n))

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=2, max_value=64),
           r=st.integers(min_value=1, max_value=63))
    def test_property_parent_child_consistent(self, n, r):
        if r >= n:
            r = r % (n - 1) + 1
        assert r in tree_children(tree_parent(r), n)


class TestBroadcast:
    @pytest.mark.parametrize("n", (2, 3, 4, 7, 8))
    def test_payload_reaches_every_node(self, n):
        cluster = Cluster(n_nodes=n)
        payload = np.arange(256, dtype=np.uint8)
        handles = nic_broadcast(cluster, payload)
        cluster.run()
        for r in range(n):
            assert handles.received[r].triggered, r
            assert (handles.buffers[r].view(np.uint8) == payload).all(), r

    def test_forwarding_is_nic_to_nic(self):
        """After setup, no CPU work happens during the broadcast."""
        cluster = Cluster(n_nodes=8)
        payload = np.full(64, 7, dtype=np.uint8)
        handles = nic_broadcast(cluster, payload)
        busy_before = cluster.total_cpu_busy_ns()
        cluster.run()
        assert cluster.total_cpu_busy_ns() == busy_before
        del handles

    def test_tree_depth_shapes_latency(self):
        """Rank 1 (depth 1) gets the payload before rank 7 (depth 3)."""
        cluster = Cluster(n_nodes=8)
        handles = nic_broadcast(cluster, np.zeros(64, dtype=np.uint8))
        cluster.run()
        t1 = handles.received[1].value.delivered_at
        t7 = handles.received[7].value.delivered_at
        assert t1 < t7

    def test_bad_root_rejected(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(ValueError):
            nic_broadcast(cluster, np.zeros(4, dtype=np.uint8), root=5)


class TestBarrier:
    @pytest.mark.parametrize("n", (2, 3, 5, 8))
    def test_all_released_after_all_enter(self, n):
        cluster = Cluster(n_nodes=n)
        handles = nic_barrier(cluster)
        # Stagger entries; nobody may be released before the last entry.
        last_entry = 50_000
        for r in range(n):
            nic = cluster[r].nic
            cluster.sim.schedule(
                (r + 1) * (last_entry // n),
                nic.mmio_write, nic.trigger_address, handles.enter_tag[r])
        cluster.run()
        for r in range(n):
            assert handles.released[r].triggered, r
            release_t = (handles.released[r].value
                         if isinstance(handles.released[r].value, int)
                         else handles.released[r].value.delivered_at)
            assert release_t > last_entry - (last_entry // n), r

    def test_nobody_released_until_last_enters(self):
        cluster = Cluster(n_nodes=4)
        handles = nic_barrier(cluster)
        for r in range(3):  # rank 3 never enters
            nic = cluster[r].nic
            nic.mmio_write(nic.trigger_address, handles.enter_tag[r])
        cluster.run()
        assert not any(handles.released[r].triggered for r in range(4))

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            nic_barrier(Cluster(n_nodes=1))

    def test_gpu_kernels_enter_barrier(self):
        """§4.2.5: execution barriers built from the kernel-side
        primitive -- each node's GPU kernel enters by a trigger store."""
        from repro.gpu.kernel import KernelDescriptor

        cluster = Cluster(n_nodes=4)
        handles = nic_barrier(cluster)
        kernel_done = {}

        def make_kernel(rank):
            def kernel(ctx):
                yield ctx.compute(1000 * (rank + 1))  # uneven arrival
                yield ctx.fence_release_system()
                yield ctx.store_trigger(handles.enter_tag[rank])
                # Poll for the release inside the kernel via rx watch is
                # host-side; the kernel simply exits after entering.
            return kernel

        for r in range(4):
            inst = cluster[r].gpu.launch(
                KernelDescriptor(fn=make_kernel(r), n_workgroups=1,
                                 name=f"bar-enter-{r}"))
            kernel_done[r] = inst.finished
        cluster.run()
        assert all(handles.released[r].triggered for r in range(4))

    def test_barrier_reports_release_after_deepest_path(self):
        """Release time covers gather-up + release-down tree latency."""
        cluster = Cluster(n_nodes=8)
        handles = nic_barrier(cluster)
        for r in range(8):
            nic = cluster[r].nic
            nic.mmio_write(nic.trigger_address, handles.enter_tag[r])
        cluster.run()
        path = cluster.config.network.link_latency_ns * 2 \
            + cluster.config.network.switch_latency_ns
        # Depth-3 gather + depth-3 release = at least 6 path traversals
        # for the last-released leaf.
        t7 = handles.released[7].value.delivered_at
        assert t7 >= 4 * path
