"""Tests for the Portals-4-flavored API layer (repro.nic.portals)."""

import numpy as np
import pytest

from repro.nic.portals import (
    Counter,
    MemoryDescriptor,
    gputn_triggered_put,
    ptl_get,
    ptl_put,
    ptl_triggered_put,
)

from conftest import build_nic_testbed


class TestCounter:
    def test_threshold_callback_fires_on_cross(self):
        tb = build_nic_testbed()
        ct = Counter(tb.nics["n0"])
        hits = []
        ct.on_threshold(3, lambda: hits.append(ct.count))
        ct.increment(2)
        assert hits == []
        ct.increment()
        assert hits == [3]

    def test_already_met_fires_immediately(self):
        tb = build_nic_testbed()
        ct = Counter(tb.nics["n0"])
        ct.increment(5)
        hits = []
        ct.on_threshold(4, lambda: hits.append(True))
        assert hits == [True]

    def test_wait_event(self):
        tb = build_nic_testbed()
        ct = Counter(tb.nics["n0"])
        ev = ct.wait(2)
        tb.sim.schedule(10, ct.increment)
        tb.sim.schedule(20, ct.increment)
        assert tb.sim.run_until_event(ev) == 2

    def test_bad_increment_rejected(self):
        tb = build_nic_testbed()
        with pytest.raises(ValueError):
            Counter(tb.nics["n0"]).increment(0)


class TestMemoryDescriptor:
    def test_defaults_to_whole_buffer(self):
        tb = build_nic_testbed()
        buf = tb.alloc_registered("n0", 256)
        md = MemoryDescriptor(buf)
        assert md.length == 256 and md.addr == buf.addr()

    def test_window(self):
        tb = build_nic_testbed()
        buf = tb.alloc_registered("n0", 256)
        md = MemoryDescriptor(buf, offset=64, length=128)
        assert md.addr == buf.addr(64)

    def test_out_of_bounds_rejected(self):
        tb = build_nic_testbed()
        buf = tb.alloc_registered("n0", 64)
        with pytest.raises(ValueError, match="outside"):
            MemoryDescriptor(buf, offset=32, length=64)

    def test_unregistered_buffer_rejected(self):
        tb = build_nic_testbed()
        buf = tb.spaces["n0"].alloc(64)
        with pytest.raises(ValueError, match="registered"):
            MemoryDescriptor(buf)


class TestPuts:
    def test_ptl_put_moves_data_and_bumps_ct(self):
        tb = build_nic_testbed()
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        src.view(np.uint8)[:] = 0x5A
        ct = Counter(tb.nics["n0"])
        md = MemoryDescriptor(src, ct=ct)
        h = ptl_put(tb.nics["n0"], md, "n1", dst.addr())
        tb.sim.run_until_event(h.delivered)
        tb.sim.run()
        assert (dst.view(np.uint8) == 0x5A).all()
        assert ct.count == 1

    def test_ptl_get(self):
        tb = build_nic_testbed()
        local = tb.alloc_registered("n0", 64)
        remote = tb.alloc_registered("n1", 64)
        remote.view(np.uint8)[:] = 0x33
        md = MemoryDescriptor(local)
        h = ptl_get(tb.nics["n0"], md, "n1", remote.addr())
        tb.sim.run_until_event(h.complete)
        assert (local.view(np.uint8) == 0x33).all()

    def test_classic_triggered_put_chains_on_counter(self):
        """PtlTriggeredPut: op fires when another op's completion counter
        reaches the threshold (collective chaining, Section 6)."""
        tb = build_nic_testbed()
        a = tb.alloc_registered("n0", 64)
        b = tb.alloc_registered("n0", 64)
        dst_a = tb.alloc_registered("n1", 64)
        dst_b = tb.alloc_registered("n1", 64)
        ct = Counter(tb.nics["n0"])
        md_a = MemoryDescriptor(a, ct=ct)
        md_b = MemoryDescriptor(b)
        # b's put fires only after a's put completes locally.
        h_b = ptl_triggered_put(tb.nics["n0"], md_b, "n1", dst_b.addr(),
                                trig_ct=ct, threshold=1)
        h_a = ptl_put(tb.nics["n0"], md_a, "n1", dst_a.addr())
        tb.sim.run()
        assert h_a.delivered.triggered and h_b.delivered.triggered
        assert (h_b.delivered.value.delivered_at
                > h_a.delivered.value.delivered_at)

    def test_gputn_triggered_put_fires_on_mmio(self):
        tb = build_nic_testbed()
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        src.view(np.uint8)[:] = 0x21
        nic = tb.nics["n0"]
        entry = gputn_triggered_put(nic, MemoryDescriptor(src), "n1",
                                    dst.addr(), tag=77, threshold=2)
        nic.mmio_write(nic.trigger_address, 77)
        tb.sim.run()
        assert not entry.fired
        nic.mmio_write(nic.trigger_address, 77)
        tb.sim.run()
        assert entry.fired
        assert (dst.view(np.uint8) == 0x21).all()

    def test_gputn_triggered_put_ct_increment(self):
        tb = build_nic_testbed()
        src = tb.alloc_registered("n0", 64)
        dst = tb.alloc_registered("n1", 64)
        ct = Counter(tb.nics["n0"])
        nic = tb.nics["n0"]
        gputn_triggered_put(nic, MemoryDescriptor(src, ct=ct), "n1",
                            dst.addr(), tag=5)
        nic.mmio_write(nic.trigger_address, 5)
        tb.sim.run()
        assert ct.count == 1
