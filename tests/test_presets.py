"""Tests for alternative system presets (repro.presets)."""

import pytest

from repro.apps.microbench import run_all_strategies
from repro.config import default_config
from repro.presets import discrete_gpu_config


@pytest.fixture(scope="module")
def apu():
    return run_all_strategies(default_config())


@pytest.fixture(scope="module")
def discrete():
    return run_all_strategies(discrete_gpu_config())


class TestPresetShape:
    def test_preset_is_strictly_slower_paths(self):
        base, disc = default_config(), discrete_gpu_config()
        assert disc.cpu.kernel_dispatch_sw_ns > base.cpu.kernel_dispatch_sw_ns
        assert disc.nic.doorbell_mmio_ns > base.nic.doorbell_mmio_ns
        assert disc.gpu.atomic_system_store_ns > base.gpu.atomic_system_store_ns
        # Untouched sections stay identical.
        assert disc.network == base.network
        assert disc.kernel == base.kernel

    def test_everything_still_correct(self, discrete):
        for key, r in discrete.items():
            assert r.payload_ok and r.memory_hazards == 0, key


class TestPaperSection52Prediction:
    """'A more traditional discrete GPU setup could see much larger
    performance improvement from GDS, since it would avoid a costly
    critical path control flow switch over the IO bus.'"""

    def _gain(self, results, a="gds", b="hdn"):
        return (results[b].normalized_target_completion_ns
                / results[a].normalized_target_completion_ns)

    def test_gds_gain_over_hdn_larger_on_discrete(self, apu, discrete):
        assert self._gain(discrete) > self._gain(apu)

    def test_gputn_no_worse_than_gds_on_discrete(self, discrete):
        """GPU-TN's margin shrinks on a discrete system -- its trigger
        store crosses PCIe while GDS's doorbell stays pre-staged -- but
        it never falls behind, and both keep beating HDN."""
        t = {k: discrete[k].normalized_target_completion_ns
             for k in ("gputn", "gds", "hdn")}
        assert t["gputn"] <= t["gds"] < t["hdn"]

    def test_all_latencies_higher_on_discrete(self, apu, discrete):
        for key in ("hdn", "gds", "gputn"):
            assert (discrete[key].normalized_target_completion_ns
                    > apu[key].normalized_target_completion_ns), key
