"""Switch output-port queue disciplines (repro.net.queues).

Property coverage for the ISSUE-8 queue invariants:

* work conservation -- a backlogged port is never idle: each admitted
  arrival that finds queued bytes starts exactly when the previous
  reservation drains;
* no intra-flow reordering -- admissions to one port start in admission
  order (the FIFO reserve discipline survives the queue layer);
* RED probability monotone in occupancy, 0 at/below the min threshold,
  1 at/above the max;

plus the determinism contract (zero-load RED consumes no randomness,
seeded draws replay) and the drop/mark accounting.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KB, QueueConfig
from repro.net.fabric import _Port
from repro.net.queues import SwitchQueues
from repro.sim.rng import RandomStreams


@dataclass
class _Msg:
    nbytes: int


def drop_tail(capacity=8 * KB):
    return SwitchQueues(QueueConfig(discipline="drop-tail",
                                    capacity_bytes=capacity))


def red(ecn=False, capacity=8 * KB, lo=2 * KB, hi=6 * KB, p=1.0, seed=0):
    cfg = QueueConfig(discipline="red", ecn=ecn, capacity_bytes=capacity,
                      red_min_bytes=lo, red_max_bytes=hi, red_max_prob=p)
    return SwitchQueues(cfg, streams=RandomStreams(seed))


KEY = ("sw0", "sw1")

arrival_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400),    # inter-arrival gap
        st.integers(min_value=64, max_value=4096),  # nbytes
    ),
    min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(plan=arrival_plan)
def test_property_work_conservation_and_fifo(plan):
    """Admitted arrivals on a backlogged port start back-to-back, and
    starts are monotone in admission order (no intra-flow reordering)."""
    q = drop_tail(capacity=1 << 30)  # never drop: isolate the timing law
    port = _Port()
    now = 0
    last_start = -1
    last_end = 0
    for gap, nbytes in plan:
        now += gap
        ser = nbytes  # 1 byte/ns: any positive serialization works
        backlog = port.busy_until > now
        start, marked = q.admit(KEY, port, _Msg(nbytes), now, now, ser)
        assert start is not None and not marked
        if backlog:  # work conservation: no idle gap while queued
            assert start == last_end
        else:        # empty port: cut-through, no queueing delay
            assert start == now
        assert start > last_start  # FIFO: admission order == start order
        last_start, last_end = start, start + ser


@settings(max_examples=60, deadline=None)
@given(occupancies=st.lists(st.integers(min_value=0, max_value=10 * KB),
                            min_size=2, max_size=30),
       lo=st.integers(min_value=0, max_value=4 * KB - 1),
       span=st.integers(min_value=1, max_value=4 * KB),
       max_prob=st.floats(min_value=0.0, max_value=1.0))
def test_property_red_probability_monotone(occupancies, lo, span, max_prob):
    cfg = QueueConfig(discipline="red", capacity_bytes=16 * KB,
                      red_min_bytes=lo, red_max_bytes=lo + span,
                      red_max_prob=max_prob)
    q = SwitchQueues(cfg, streams=RandomStreams(0))
    probs = [q.red_probability(o) for o in sorted(occupancies)]
    assert probs == sorted(probs)  # monotone in occupancy
    for o, p in zip(sorted(occupancies), probs):
        if o <= lo:
            assert p == 0.0
        elif o >= lo + span:
            assert p == 1.0
        else:
            assert 0.0 <= p <= max_prob


class TestDropTail:
    def test_overflow_drops_and_counts(self):
        q = drop_tail(capacity=1 * KB)
        port = _Port()
        start, _ = q.admit(KEY, port, _Msg(1024), 0, 0, 1024)
        assert start == 0
        dropped, _ = q.admit(KEY, port, _Msg(1), 0, 0, 1)
        assert dropped is None
        assert q.stats["dropped"] == 1 and q.stats["enqueued"] == 1
        assert q.counters() == {"queue_enqueued": 1, "queue_dropped": 1,
                                "queue_max_depth_bytes": 1024}

    def test_drained_bytes_free_capacity(self):
        q = drop_tail(capacity=1 * KB)
        port = _Port()
        q.admit(KEY, port, _Msg(1024), 0, 0, 100)  # drains at 100
        start, _ = q.admit(KEY, port, _Msg(1024), 150, 150, 100)
        assert start == 150  # backlog pruned: the queue emptied at 100
        assert q.stats["dropped"] == 0

    def test_ports_are_independent(self):
        q = drop_tail(capacity=1 * KB)
        q.admit(("a", "b"), _Port(), _Msg(1024), 0, 0, 10)
        start, _ = q.admit(("b", "c"), _Port(), _Msg(1024), 0, 0, 10)
        assert start == 0 and q.stats["dropped"] == 0


class TestRed:
    def test_requires_streams(self):
        with pytest.raises(ValueError, match="RandomStreams"):
            SwitchQueues(QueueConfig(discipline="red"))

    def test_below_min_never_draws(self):
        q = red(lo=2 * KB)
        port = _Port()
        for i in range(4):  # 4 x 512 = exactly red_min: no draw yet
            start, marked = q.admit(KEY, port, _Msg(512), 0, 0, 10 ** 6)
            assert start is not None and not marked
        assert q._rngs == {}  # the zero-load byte-identity guarantee

    def test_above_max_always_drops(self):
        q = red(lo=1 * KB, hi=2 * KB)
        port = _Port()
        q.admit(KEY, port, _Msg(2 * KB), 0, 0, 10 ** 6)
        assert q.admit(KEY, port, _Msg(64), 0, 0, 64) == (None, False)
        assert q._rngs == {}  # p==1 is deterministic: still no draw

    def test_ecn_marks_instead_of_dropping(self):
        q = red(ecn=True, lo=1 * KB, hi=2 * KB)
        port = _Port()
        q.admit(KEY, port, _Msg(2 * KB), 0, 0, 10 ** 6)
        start, marked = q.admit(KEY, port, _Msg(64), 0, 0, 64)
        assert start is not None and marked
        assert q.stats == {"enqueued": 2, "dropped": 0, "ecn_marked": 1,
                           "max_depth_bytes": 2 * KB + 64}

    def test_ecn_capacity_brick_wall_still_drops(self):
        q = red(ecn=True, capacity=2 * KB, lo=0, hi=1 * KB)
        port = _Port()
        q.admit(KEY, port, _Msg(2 * KB), 0, 0, 10 ** 6)
        assert q.admit(KEY, port, _Msg(1), 0, 0, 1) == (None, False)
        assert q.stats["dropped"] == 1

    def test_ramp_draws_replay_deterministically(self):
        def verdicts(seed):
            q = red(lo=1 * KB, hi=8 * KB, seed=seed)
            port = _Port()
            out = []
            for _ in range(30):
                start, _ = q.admit(KEY, port, _Msg(512), 0, 0, 10 ** 9)
                out.append(start is not None)
            return out

        assert verdicts(7) == verdicts(7)
        assert True in verdicts(7) and False in verdicts(7)

    def test_per_port_substreams_are_independent(self):
        # Interleaving draws on a second port must not shift the first
        # port's verdict sequence (the named-substream contract).
        def first_port_verdicts(touch_other):
            q = red(lo=0, hi=8 * KB, p=0.5, seed=3)
            pa, pb = _Port(), _Port()
            out = []
            for _ in range(20):
                if touch_other:
                    q.admit(("x", "y"), pb, _Msg(512), 0, 0, 10 ** 9)
                start, _ = q.admit(KEY, pa, _Msg(512), 0, 0, 10 ** 9)
                out.append(start is not None)
            return out

        assert first_port_verdicts(False) == first_port_verdicts(True)


class TestProbes:
    def test_probe_reports_depth_after_admission(self):
        q = drop_tail()
        seen = []
        q.probes.append(lambda now, key, depth: seen.append((now, key, depth)))
        port = _Port()
        q.admit(KEY, port, _Msg(100), 5, 5, 10 ** 6)
        q.admit(KEY, port, _Msg(50), 6, 6, 10 ** 6)
        assert seen == [(5, KEY, 100), (6, KEY, 150)]
