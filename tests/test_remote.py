"""Remote workers, priorities, cancel and submission backpressure.

The acceptance properties of DESIGN.md §13: the framed protocol never
delivers a torn frame, stale workers are rejected at the handshake, a
job served by remote workers (even one SIGKILLed mid-point) produces
records byte-identical to a local-only run with the dead worker's
in-flight point reissued exactly once, higher-priority jobs preempt
lower ones at point granularity, and `jobs cancel` / submit throttling
behave cooperatively.
"""

import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from _remote_workload import SleepyMicrobench
from repro.apps.microbench import MicrobenchExperiment
from repro.config import default_config
from repro.runtime import Sweep
from repro.runtime.record import config_fingerprint
from repro.service import (Job, JobSpec, JobStore, PriorityGate,
                           SubmitThrottled, WorkQueue)
from repro.service.remote import (PROTOCOL_VERSION, RemoteDispatcher,
                                  _parse_hostport, recv_frame, send_frame,
                                  serve_worker)
from repro.version import __version__

SRC = str(Path(__file__).resolve().parent.parent / "src")
TESTS = str(Path(__file__).resolve().parent)
WORKER_ENV = dict(os.environ, PYTHONPATH=os.pathsep.join([SRC, TESTS]))


def _spawn_worker(port: int) -> subprocess.Popen:
    """A real worker process joining the dispatcher at ``port``.

    Imports ``_remote_workload`` first so the kamikaze runner and the
    sleepy experiment unpickle on the worker side.
    """
    code = ("import _remote_workload, sys; "
            "from repro.service.remote import serve_worker; "
            f"sys.exit(serve_worker('127.0.0.1:{port}', retry_s=10.0))")
    return subprocess.Popen([sys.executable, "-c", code], env=WORKER_ENV,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)


def _reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def _jsons(records):
    return [r.to_json() for r in records]


# ----------------------------------------------------------------- framing
class TestFraming:
    def _pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self._pair()
        try:
            for obj in [("task", 3, {"nbytes": 64}), {"type": "hello"},
                        b"\x00" * 1000, ["nested", ("tuple", 1)]]:
                send_frame(a, obj)
                assert recv_frame(b) == obj
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        try:
            a.sendall((10).to_bytes(4, "big") + b"abc")  # torn frame
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_raises(self):
        a, b = self._pair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(ConnectionError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_hostport(self):
        assert _parse_hostport(8125, "0.0.0.0") == ("0.0.0.0", 8125)
        assert _parse_hostport("0", "0.0.0.0") == ("0.0.0.0", 0)
        assert _parse_hostport("node7:9000", "x") == ("node7", 9000)
        assert _parse_hostport(("", 7), "127.0.0.1") == ("127.0.0.1", 7)


# --------------------------------------------------------------- handshake
class TestHandshake:
    @pytest.fixture
    def dispatcher(self):
        d = RemoteDispatcher("127.0.0.1", 0, job_id="abc123def456",
                             runner_name="sweep", payload=b"payload-bytes")
        yield d
        d.close(final=True)

    def _connect(self, dispatcher):
        return socket.create_connection(dispatcher.address, timeout=5)

    def test_stale_code_version_rejected(self, dispatcher):
        with self._connect(dispatcher) as sock:
            send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION,
                              "code_version": "0.0.0-stale"})
            resp = recv_frame(sock)
        assert resp["type"] == "reject"
        assert "0.0.0-stale" in resp["reason"]
        assert resp["job_id"] == "abc123def456"

    def test_protocol_skew_rejected(self, dispatcher):
        with self._connect(dispatcher) as sock:
            send_frame(sock, {"type": "hello", "protocol": 999,
                              "code_version": __version__})
            resp = recv_frame(sock)
        assert resp["type"] == "reject"
        assert "protocol" in resp["reason"]

    def test_welcome_carries_job_identity(self, dispatcher):
        with self._connect(dispatcher) as sock:
            send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION,
                              "code_version": __version__})
            resp = recv_frame(sock)
            assert resp["type"] == "welcome"
            assert resp["job_id"] == "abc123def456"
            assert resp["runner"] == "sweep"
            assert resp["payload"] == b"payload-bytes"
            assert resp["proxy_cache"] is False
            assert resp["code_version"] == __version__
            send_frame(sock, {"type": "ready"})
            # The handshaken connection becomes an adoptable endpoint.
            import queue as _q
            results: _q.Queue = _q.Queue()
            deadline = time.monotonic() + 5
            eps = []
            while not eps and time.monotonic() < deadline:
                eps = dispatcher.take_endpoints(results, lambda: 7)
                time.sleep(0.01)
            assert len(eps) == 1 and eps[0].wid == 7
            eps[0].shutdown(final=True)
            assert recv_frame(sock) == ("stop", True)

    def test_garbage_client_keeps_listener_alive(self, dispatcher):
        with self._connect(dispatcher) as sock:
            sock.sendall(b"\x00\x00\x00\x04junk")
        # A later, well-behaved client still gets through.
        self.test_welcome_carries_job_identity(dispatcher)

    def test_rejected_worker_exits_2(self):
        # A fake dispatcher that turns everyone away.
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def reject_one():
            conn, _ = listener.accept()
            with conn:
                recv_frame(conn)
                send_frame(conn, {"type": "reject", "reason": "stale",
                                  "job_id": "x"})

        t = threading.Thread(target=reject_one, daemon=True)
        t.start()
        try:
            assert serve_worker(f"127.0.0.1:{port}", log=lambda _m: None) == 2
        finally:
            t.join(timeout=5)
            listener.close()

    def test_no_dispatcher_exits_1(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        assert serve_worker(f"127.0.0.1:{port}", retry_s=0,
                            log=lambda _m: None) == 1

    def test_worker_cli_exit_codes(self):
        from repro.__main__ import main
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["worker", "serve", "--connect", f"127.0.0.1:{port}",
                     "--retry", "0"]) == 1


# ----------------------------------------------------------- remote workers
def _sleepy_sweep(n=6, delay_s=0.0):
    return Sweep(SleepyMicrobench(),
                 points=[{"nbytes": 64 * (i + 1), "delay_s": delay_s}
                         for i in range(n)])


class TestRemoteExecution:
    def test_two_workers_sigkill_one_byte_identical(self):
        baseline = Job.from_sweep(_sleepy_sweep(delay_s=0.15)).run(jobs=1)

        job = Job.from_sweep(_sleepy_sweep(delay_s=0.15))
        host, port = job.listen(("127.0.0.1", 0))
        workers = [_spawn_worker(port), _spawn_worker(port)]
        killed = threading.Event()

        def on_point(event):
            # By the second completion both workers hold a task; killing
            # one mid-point forces a reissue of its in-flight point.
            if event.done >= 2 and not killed.is_set():
                killed.set()
                workers[0].kill()

        try:
            records = job.run(jobs=0, progress=on_point)
        finally:
            _reap(*workers)
        assert all(r is not None for r in records)
        assert _jsons(records) == _jsons(baseline)
        assert job.queue_stats["local"] == 0
        assert job.queue_stats["remote"] == len(records)
        assert job.queue_stats["reissued"] <= 1

    def test_kamikaze_remote_reissued_exactly_once(self, tmp_path):
        cfg = default_config()
        points = [{"nbytes": 64 * (i + 1)} for i in range(4)]
        clean = JobSpec(
            runner="sweep", experiment="microbench", points=tuple(points),
            config_fingerprint=config_fingerprint(cfg),
            payload=pickle.dumps((MicrobenchExperiment(), cfg, None, None)))
        baseline = Job(clean).run(jobs=1)

        marked = [dict(p) for p in points]
        marked[2]["die_dir"] = str(tmp_path)
        spec = JobSpec(
            runner="kamikaze", experiment="microbench", points=tuple(marked),
            config_fingerprint=config_fingerprint(cfg),
            payload=pickle.dumps((MicrobenchExperiment(), cfg, None, None)))
        job = Job(spec)
        host, port = job.listen(("127.0.0.1", 0))
        workers = [_spawn_worker(port), _spawn_worker(port)]
        try:
            records = job.run(jobs=0)
        finally:
            _reap(*workers)
        assert (tmp_path / "died-2").exists()
        assert all(r is not None for r in records)
        assert _jsons(records) == _jsons(baseline)
        assert job.queue_stats["reissued"] == 1

    def test_kamikaze_local_pool_reissued_exactly_once(self, tmp_path):
        import _remote_workload  # noqa: F401  (registers "kamikaze")
        cfg = default_config()
        points = [{"nbytes": 64 * (i + 1)} for i in range(4)]
        clean = JobSpec(
            runner="sweep", experiment="microbench", points=tuple(points),
            config_fingerprint=config_fingerprint(cfg),
            payload=pickle.dumps((MicrobenchExperiment(), cfg, None, None)))
        baseline = Job(clean).run(jobs=1)

        marked = [dict(p) for p in points]
        marked[1]["die_dir"] = str(tmp_path)
        spec = JobSpec(
            runner="kamikaze", experiment="microbench", points=tuple(marked),
            config_fingerprint=config_fingerprint(cfg),
            payload=pickle.dumps((MicrobenchExperiment(), cfg, None, None)))
        job = Job(spec)
        records = job.run(jobs=2)
        assert all(r is not None for r in records)
        assert _jsons(records) == _jsons(baseline)
        assert job.queue_stats["reissued"] == 1
        assert job.queue_stats["remote"] == 0


# --------------------------------------------------------------- priorities
class TestPriorities:
    def test_gate_semantics(self):
        gate = PriorityGate()
        low = gate.register(0)
        assert gate.clear(low)
        high = gate.register(1)
        assert not gate.clear(low)
        assert gate.clear(high)
        peer = gate.register(1)
        assert gate.clear(high) and gate.clear(peer)  # ties share freely
        gate.unregister(high)
        gate.unregister(peer)
        assert gate.clear(low)

    def test_high_priority_job_preempts_low(self):
        events = []
        lock = threading.Lock()
        low_started = threading.Event()

        def tag(label):
            def cb(_event):
                with lock:
                    events.append(label)
                low_started.set()
            return cb

        low = Job.from_sweep(_sleepy_sweep(n=6, delay_s=0.2), priority=0)
        runner = threading.Thread(
            target=lambda: low.run(jobs=1, progress=tag("low")), daemon=True)
        runner.start()
        assert low_started.wait(timeout=30)

        high = Job.from_sweep(_sleepy_sweep(n=2), priority=1)
        high.run(jobs=1, progress=tag("high"))
        runner.join(timeout=60)
        assert not runner.is_alive()

        with lock:
            seq = list(events)
        assert seq.count("high") == 2 and seq.count("low") == 6
        # Once the high-priority job is in, the low job may finish at
        # most its one in-flight point before the high job completes.
        window = seq[seq.index("high"):len(seq) - seq[::-1].index("high")]
        assert window.count("low") <= 1


# ------------------------------------------------------------------- cancel
class TestCancel:
    def test_store_cancel_stops_mid_run(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_sweep(_sleepy_sweep(n=6, delay_s=0.3), store=store)

        def cancel_early(event):
            if event.done == 1:
                store.request_cancel(job.id)

        records = job.run(jobs=1, progress=cancel_early)
        assert any(r is not None for r in records)
        assert any(r is None for r in records)  # cooperative: cut short
        assert store.meta(job.id)["status"] == "cancelled"
        assert job.status()["cancel_requested"] is True

    def test_rerun_clears_stale_cancel(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_sweep(_sleepy_sweep(n=2), store=store)
        store.request_cancel(job.id)
        records = job.run(jobs=1)  # a deliberate re-run overrides cancel
        assert all(r is not None for r in records)
        assert store.meta(job.id)["status"] == "done"

    def test_cancel_cli(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = JobSpec(runner="bench", experiment="bench",
                       points=({"workload": "engine", "repeat": 1},),
                       config_fingerprint="bench", payload=b"")
        store = JobStore(tmp_path)
        job_id = store.create(spec)
        assert main(["jobs", "cancel", job_id, "--store",
                     str(tmp_path)]) == 0
        assert f"job {job_id} cancelled" in capsys.readouterr().out
        assert store.cancel_requested(job_id)
        assert store.meta(job_id)["status"] == "cancelled"
        assert main(["jobs", "cancel", "feedfacecafe", "--store",
                     str(tmp_path)]) == 1


# ------------------------------------------------------------- backpressure
class TestSubmitBackpressure:
    def _spec(self, i=0):
        return JobSpec(runner="bench", experiment="bench",
                       points=({"workload": "engine", "repeat": i + 1},),
                       config_fingerprint="bench", payload=b"")

    def test_max_active_rejects_new_jobs(self, tmp_path):
        plain = JobStore(tmp_path)
        running = plain.submit(self._spec(0))
        plain.set_meta(running, status="running")
        throttled = JobStore(tmp_path, max_active=1)
        with pytest.raises(SubmitThrottled, match="max_active"):
            throttled.submit(self._spec(1))
        # Once the running job finishes, the same submit goes through.
        plain.set_meta(running, status="done")
        assert throttled.submit(self._spec(1)) == self._spec(1).job_id()

    def test_resume_is_never_throttled(self, tmp_path):
        plain = JobStore(tmp_path)
        job_id = plain.submit(self._spec(0))
        plain.set_meta(job_id, status="running")
        throttled = JobStore(tmp_path, max_active=0, min_interval_s=3600)
        assert throttled.submit(self._spec(0)) == job_id

    def test_min_interval_rate_limits(self, tmp_path):
        store = JobStore(tmp_path, min_interval_s=10.0)
        assert store.submit(self._spec(0), clock=lambda: 100.0)
        with pytest.raises(SubmitThrottled, match="limited to one per"):
            store.submit(self._spec(1), clock=lambda: 104.0)
        assert store.submit(self._spec(1), clock=lambda: 111.0)


# -------------------------------------------------------- queue validation
class TestQueueValidation:
    def test_bad_windows_and_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            WorkQueue(None, None, "sweep", b"", jobs=-1)
        with pytest.raises(ValueError, match="remote"):
            WorkQueue(None, None, "sweep", b"", jobs=0)
        with pytest.raises(ValueError, match="window"):
            WorkQueue(None, None, "sweep", b"", jobs=2, window=0)

    def test_remote_only_run_requires_listen(self):
        job = Job.from_sweep(_sleepy_sweep(n=2))
        with pytest.raises(ValueError, match="listen"):
            job.run(jobs=0)
