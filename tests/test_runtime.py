"""Tests for the unified experiment runtime (repro.runtime)."""

import json

import pytest

from repro.apps.jacobi import JacobiExperiment
from repro.apps.microbench import MicrobenchExperiment
from repro.collectives import AllreduceExperiment
from repro.config import default_config
from repro.runtime import (
    Experiment,
    ResultCache,
    RunRecord,
    Sweep,
    config_fingerprint,
    run_sweep,
)
from repro.runtime.record import json_safe, make_cache_key


class TestRunRecord:
    def test_json_round_trip_is_identity(self):
        rec = MicrobenchExperiment().run({"strategy": "gputn"})
        again = RunRecord.from_json(rec.to_json())
        assert again == rec
        assert again.to_json() == rec.to_json()
        assert again.fingerprint() == rec.fingerprint()

    def test_canonical_json_is_key_sorted(self):
        rec = RunRecord(experiment="x", params={"b": 1, "a": 2},
                        config_fingerprint="f", metrics={})
        doc = json.loads(rec.to_json())
        assert list(doc["params"]) == sorted(doc["params"])

    def test_spans_normalized_to_tuples(self):
        rec = RunRecord(experiment="x", params={}, config_fingerprint="f",
                        metrics={}, spans=[["n", "a", "p", 1, 2]])
        assert rec.spans == (("n", "a", "p", 1, 2),)

    def test_non_scalar_metric_rejected(self):
        with pytest.raises(TypeError, match="JSON-safe"):
            RunRecord(experiment="x", params={}, config_fingerprint="f",
                      metrics={"bad": object()})

    def test_json_safe_unwraps_numpy(self):
        import numpy as np
        assert json_safe(np.int64(3)) == 3
        assert json_safe(np.bool_(True)) is True


class TestConfigFingerprint:
    def test_stable_and_sensitive(self):
        base = default_config()
        assert config_fingerprint(base) == config_fingerprint(default_config())
        tweaked = base.with_(network=base.network.__class__(bandwidth_gbps=200))
        assert config_fingerprint(tweaked) != config_fingerprint(base)


class TestExperimentLifecycle:
    def test_execute_returns_record_raw_cluster(self):
        ex = MicrobenchExperiment().execute({"strategy": "gds"})
        assert ex.record.experiment == "microbench"
        assert ex.record.params["strategy"] == "gds"
        assert ex.raw.strategy == "gds"
        assert ex.cluster.tracer.spans  # traced by default
        assert ex.record.spans  # decomposition captured in the record

    def test_defaults_merged_under_point(self):
        rec = JacobiExperiment().run({"n": 8})
        assert rec.params["strategy"] == "gputn"  # default
        assert rec.params["n"] == 8

    def test_failed_process_raises(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            JacobiExperiment().run({"strategy": "nope"})

    def test_untraced_run_has_no_spans(self):
        rec = JacobiExperiment().run({"n": 8})
        assert rec.spans == ()

    def test_trace_opt_in(self):
        rec = JacobiExperiment().run({"n": 8}, trace=True)
        assert rec.spans

    def test_wrappers_match_experiment(self):
        from repro.apps.jacobi import run_jacobi
        raw = run_jacobi(n=8, iters=1)
        rec = JacobiExperiment().run({"n": 8, "iters": 1})
        assert rec.metrics["total_ns"] == raw.total_ns


class TestSweep:
    def test_grid_order_first_key_slowest(self):
        sweep = Sweep(JacobiExperiment(),
                      grid={"strategy": ["hdn", "cpu"], "n": [8, 16]})
        pts = sweep.sweep_points()
        assert [(p["strategy"], p["n"]) for p in pts] == [
            ("hdn", 8), ("hdn", 16), ("cpu", 8), ("cpu", 16)]

    def test_explicit_points_override_grid(self):
        sweep = Sweep(JacobiExperiment(), grid={"n": [1, 2, 3]},
                      base={"iters": 1}, points=[{"n": 8}])
        assert sweep.sweep_points() == [{"iters": 1, "n": 8}]

    def test_run_sweep_returns_point_order(self):
        records = run_sweep(AllreduceExperiment(),
                            grid={"n_nodes": [3, 2]},
                            base={"nbytes": 4 * 1024})
        assert [r.params["n_nodes"] for r in records] == [3, 2]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            Sweep(JacobiExperiment()).run(jobs=0)


class TestResultCache:
    def test_hit_equals_fresh_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = Sweep(AllreduceExperiment(),
                      grid={"strategy": ["gputn"], "n_nodes": [2, 3]},
                      base={"nbytes": 4 * 1024})
        fresh = sweep.run(cache=cache)
        assert cache.misses == 2 and len(cache) == 2
        cached = sweep.run(cache=cache)
        assert cache.hits == 2
        assert [r.to_json() for r in cached] == [r.to_json() for r in fresh]
        # And equal to a totally cache-less run.
        bare = sweep.run()
        assert [r.to_json() for r in bare] == [r.to_json() for r in fresh]

    def test_key_sensitive_to_params_config_version(self):
        fp = config_fingerprint(default_config())
        k = make_cache_key("e", {"a": 1}, fp)
        assert k != make_cache_key("e", {"a": 2}, fp)
        assert k != make_cache_key("e2", {"a": 1}, fp)
        assert k != make_cache_key("e", {"a": 1}, "other")
        assert k != make_cache_key("e", {"a": 1}, fp, code_version="0.0.0")

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        rec = AllreduceExperiment().run({"n_nodes": 2, "nbytes": 1024})
        path = cache.put(rec)
        path.write_text("{not json")
        assert cache.get(rec.experiment, rec.params,
                         rec.config_fingerprint) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        rec = AllreduceExperiment().run({"n_nodes": 2, "nbytes": 1024})
        cache.put(rec)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExperimentBaseErrors:
    def test_abstract_hooks_raise(self):
        ex = Experiment()
        with pytest.raises(NotImplementedError):
            ex.run()
