"""Determinism: parallel sweeps are byte-identical to serial ones.

The acceptance property of the runtime's process pool: running the
Figure 9 (Jacobi) and Figure 10 (Allreduce) sweeps with ``jobs=4``
must produce RunRecords byte-for-byte equal to the serial run, and a
cache hit must return results equal to a fresh simulation.  Sweep sizes
are scaled down so the property runs in seconds.
"""

import pytest

from repro.apps.jacobi import JacobiExperiment
from repro.collectives import AllreduceExperiment
from repro.runtime import ResultCache, Sweep

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _fig9_sweep() -> Sweep:
    return Sweep(JacobiExperiment(),
                 grid={"strategy": ["hdn", "cpu", "gds", "gputn"],
                       "n": [8, 16]},
                 base={"iters": 1})


def _fig10_sweep() -> Sweep:
    return Sweep(AllreduceExperiment(),
                 grid={"strategy": ["cpu", "hdn", "gds", "gputn"],
                       "n_nodes": [2, 3]},
                 base={"nbytes": 16 * 1024})


class TestParallelDeterminism:
    def test_fig9_parallel_bit_identical_to_serial(self):
        serial = _fig9_sweep().run(jobs=1)
        parallel = _fig9_sweep().run(jobs=4)
        assert [r.to_json() for r in parallel] == [r.to_json() for r in serial]
        # The Jacobi record digests the assembled grid, so this equality
        # covers the numerics, not just the simulated clock.
        assert all("grid_sha256" in r.metrics for r in serial)

    def test_fig10_parallel_bit_identical_to_serial(self):
        serial = _fig10_sweep().run(jobs=1)
        parallel = _fig10_sweep().run(jobs=4)
        assert [r.to_json() for r in parallel] == [r.to_json() for r in serial]

    def test_parallel_cache_hit_equals_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = _fig10_sweep().run(jobs=4, cache=cache)
        assert cache.misses == 8
        hit = _fig10_sweep().run(jobs=4, cache=cache)
        assert cache.hits == 8
        assert [r.to_json() for r in hit] == [r.to_json() for r in fresh]

    def test_partial_cache_mixes_correctly(self, tmp_path):
        """Half the points cached, half fresh: order and content hold."""
        cache = ResultCache(tmp_path)
        small = Sweep(AllreduceExperiment(),
                      grid={"strategy": ["cpu", "hdn"], "n_nodes": [2]},
                      base={"nbytes": 16 * 1024})
        small.run(cache=cache)  # seed two of the eight points
        full = _fig10_sweep().run(jobs=4, cache=cache)
        bare = _fig10_sweep().run()
        assert [r.to_json() for r in full] == [r.to_json() for r in bare]
