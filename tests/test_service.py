"""The service layer: specs, stores, jobs -- and the kill/resume contract.

The acceptance properties of DESIGN.md §11: job ids are content
addressed (resubmit == resume), the journal makes completed points free
on resume, cooperative preemption (cancel or SIGINT/SIGTERM) never loses
a completed point, and records coming out of the service path are
byte-identical to a plain serial sweep.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.collectives import AllreduceExperiment
from repro.runtime import Sweep
from repro.runtime.record import RunRecord
from repro.service import Job, JobPreempted, JobSpec, JobStore

SRC = str(Path(__file__).resolve().parent.parent / "src")
HELPER = str(Path(__file__).resolve().parent / "_service_workload.py")
CKPT_HELPER = str(Path(__file__).resolve().parent / "_checkpoint_workload.py")


def _sweep() -> Sweep:
    return Sweep(AllreduceExperiment(),
                 grid={"strategy": ["cpu", "gputn"], "n_nodes": [2, 3]},
                 base={"nbytes": 16 * 1024})


def _spec(**over) -> JobSpec:
    fields = dict(runner="bench", experiment="bench",
                  points=({"workload": "engine", "repeat": 1},
                          {"workload": "jacobi", "repeat": 1}),
                  config_fingerprint="bench", payload=b"")
    fields.update(over)
    return JobSpec(**fields)


def _record(index: int) -> RunRecord:
    return RunRecord(experiment="svc", params={"i": index},
                     config_fingerprint="cafebabe00000000",
                     metrics={"value": index * 10})


class TestJobSpec:
    def test_id_is_content_addressed(self):
        assert _spec().job_id() == _spec().job_id()
        assert len(_spec().job_id()) == 12

    def test_id_tracks_the_work(self):
        base = _spec().job_id()
        assert _spec(points=({"workload": "engine", "repeat": 2},)
                     ).job_id() != base
        assert _spec(experiment="other").job_id() != base
        assert _spec(config_fingerprint="deadbeef").job_id() != base

    def test_id_ignores_cache_location_and_payload(self):
        # Same campaign pointed at a different cache, or re-pickled, is
        # still the same work -- resubmission must find the old journal.
        base = _spec().job_id()
        assert _spec(cache_root="/elsewhere").job_id() == base
        assert _spec(payload=b"different-pickle").job_id() == base

    def test_round_trips_through_json(self):
        spec = _spec(payload=b"\x00\x01binary")
        again = JobSpec.from_json(spec.to_json())
        assert again == spec
        assert again.job_id() == spec.job_id()

    def test_unmaterialized_payload_cannot_persist(self):
        with pytest.raises(ValueError, match="payload"):
            _spec(payload=None).to_json()

    def test_unknown_format_rejected(self):
        doc = _spec().to_json().replace('"format":1', '"format":99')
        with pytest.raises(ValueError, match="format"):
            JobSpec.from_json(doc)


class TestJobStore:
    def test_create_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(_spec())
        original = (tmp_path / job_id / "spec.json").read_bytes()
        # Resubmission with a different (non-identity) payload must not
        # clobber the stored spec -- the journal belongs to the original.
        assert store.create(_spec(payload=b"other")) == job_id
        assert (tmp_path / job_id / "spec.json").read_bytes() == original

    def test_load_missing_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="no job"):
            JobStore(tmp_path).load("doesnotexist")

    def test_journal_round_trip_skips_torn_tail(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(_spec())
        store.append_point(job_id, 0, _record(0))
        store.append_point(job_id, 3, _record(3))
        journal = tmp_path / job_id / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"index": 5, "record": {"exp')  # killed mid-append
        done = store.completed(job_id)
        assert sorted(done) == [0, 3]
        assert done[3].metrics == {"value": 30}

    def test_meta_merges(self, tmp_path):
        store = JobStore(tmp_path)
        store.set_meta("j1", status="running", total=8)
        store.set_meta("j1", status="done", done=8)
        assert store.meta("j1") == {"status": "done", "total": 8, "done": 8}

    def test_jobs_listed_sorted_and_discardable(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.create(_spec())
        b = store.create(_spec(experiment="other"))
        assert store.jobs() == sorted([a, b])
        assert store.discard(a) is True
        assert store.discard(a) is False
        assert store.jobs() == [b]


class TestJobLifecycle:
    def test_stream_yields_every_point_in_resolve_order(self):
        job = Job.from_sweep(_sweep())
        events = list(job.stream())
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert {e.source for e in events} == {"run"}
        serial = [r.to_json() for r in _sweep().run()]
        by_index = [e.record.to_json()
                    for e in sorted(events, key=lambda e: e.index)]
        assert by_index == serial

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            Job.from_sweep(_sweep()).run(jobs=0)

    def test_cancel_leaves_none_holes_and_resume_completes(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_sweep(_sweep(), store=store)

        def stop_after_two(event) -> None:
            if event.done == 2:
                job.cancel()

        partial = job.run(progress=stop_after_two)
        assert partial[:2] != [None, None] and partial[2:] == [None, None]
        assert job.status()["status"] == "cancelled"
        assert job.stats == {"journal": 0, "cache": 0, "restored": 0, "run": 2}

        # Resubmitting the identical campaign resumes: same id, the two
        # journaled points replay, only the holes execute.
        again = Job.from_sweep(_sweep(), store=store)
        assert again.id == job.id
        records = again.run()
        assert again.stats == {"journal": 2, "cache": 0, "restored": 0, "run": 2}
        assert again.status()["status"] == "done"
        serial = [r.to_json() for r in _sweep().run()]
        assert [r.to_json() for r in records] == serial

    def test_load_rehydrates_from_disk_alone(self, tmp_path):
        store = JobStore(tmp_path)
        submitted = Job.from_sweep(_sweep(), store=store)
        submitted.run()
        # A fresh process would hold no live objects -- only the store.
        resumed = Job.load(store, submitted.id)
        records = resumed.run()
        assert resumed.stats["journal"] == 4 and resumed.stats["run"] == 0
        assert ([r.to_json() for r in records]
                == [r.to_json() for r in _sweep().run()])

    def test_sigterm_preempts_and_resume_finishes(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job.from_sweep(_sweep(), store=store)

        def kill_after_two(event) -> None:
            if event.done == 2:
                os.kill(os.getpid(), signal.SIGTERM)

        with pytest.raises(JobPreempted) as caught:
            job.run(progress=kill_after_two)
        assert caught.value.job_id == job.id
        assert caught.value.done == 2
        assert job.status()["status"] == "preempted"
        assert len(store.completed(job.id)) == 2

        resumed = Job.load(store, job.id)
        records = resumed.run()
        assert resumed.stats == {"journal": 2, "cache": 0, "restored": 0, "run": 2}
        assert ([r.to_json() for r in records]
                == [r.to_json() for r in _sweep().run()])

    def test_signal_disposition_restored_after_run(self, tmp_path):
        before = (signal.getsignal(signal.SIGINT),
                  signal.getsignal(signal.SIGTERM))
        Job.from_sweep(_sweep(), store=JobStore(tmp_path)).run()
        assert (signal.getsignal(signal.SIGINT),
                signal.getsignal(signal.SIGTERM)) == before


class TestKillResume:
    """A real process killed mid-campaign resumes from its journal."""

    def _launch(self, tmp_path, seeds=12, delay=0.05):
        return subprocess.Popen(
            [sys.executable, HELPER, str(tmp_path / "jobs"), str(seeds),
             str(delay)],
            stdout=subprocess.PIPE, text=True, bufsize=1,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})

    def _wait_for_cases(self, proc, n) -> None:
        seen = 0
        for line in proc.stdout:
            if line.startswith("case "):
                seen += 1
                if seen >= n:
                    return
        pytest.fail(f"helper exited after {seen} cases, wanted {n}")

    @pytest.mark.parametrize("sig,expect_rc", [
        (signal.SIGTERM, 130),   # cooperative: handler marks preempted
        (signal.SIGKILL, -9),    # hard kill: journal alone must suffice
    ])
    def test_kill_then_resume_reruns_only_holes(self, tmp_path, sig,
                                                expect_rc):
        seeds = 12
        proc = self._launch(tmp_path, seeds=seeds)
        try:
            self._wait_for_cases(proc, 3)
            proc.send_signal(sig)
            rc = proc.wait(timeout=60)
        finally:
            proc.stdout.close()
            proc.kill()
        assert rc == expect_rc

        store = JobStore(tmp_path / "jobs")
        (job_id,) = store.jobs()
        journaled = len(store.completed(job_id))
        assert 0 < journaled < seeds, "signal must land mid-campaign"

        resumed = Job.load(store, job_id)
        records = resumed.run()
        assert resumed.stats["journal"] == journaled
        assert resumed.stats["run"] == seeds - journaled
        assert resumed.status()["status"] == "done"

        from repro.validate import run_campaign
        serial = run_campaign(workloads=["microbench"], seeds=seeds)
        assert ([r.to_json() for r in records]
                == [r.to_json() for r in serial.records])


class TestCheckpointKillResume:
    """SIGKILL *mid-point* (nothing journaled) resumes from a periodic
    checkpoint, not from scratch, with byte-identical records -- the
    ISSUE-9 acceptance property, against a real killed process."""

    ENV = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}

    def test_sigkill_mid_point_resumes_from_checkpoint(self, tmp_path):
        store_dir = str(tmp_path / "ckpt-jobs")
        proc = subprocess.Popen(
            [sys.executable, CKPT_HELPER, store_dir, "run", "4000"],
            stdout=subprocess.PIPE, text=True, bufsize=1, env=self.ENV)
        try:
            for line in proc.stdout:
                if line.startswith("checkpoint "):
                    proc.send_signal(signal.SIGKILL)
                    break
            else:
                pytest.fail("helper finished before writing a checkpoint")
            rc = proc.wait(timeout=60)
        finally:
            proc.stdout.close()
            proc.kill()
        assert rc == -9

        # The kill landed mid-point: the journal never saw it, so only
        # the on-disk snapshots can carry the completed work forward.
        store = JobStore(store_dir)
        (job_id,) = store.jobs()
        assert len(store.completed(job_id)) == 0
        assert store.checkpoints(job_id), "no snapshot survived the kill"

        # Resume in a fresh process: the helper exits nonzero unless at
        # least one point restored from a snapshot AND every record is
        # byte-identical to an uninterrupted checkpoint-free run.
        out = subprocess.run(
            [sys.executable, CKPT_HELPER, store_dir, "resume", "4000"],
            capture_output=True, text=True, env=self.ENV, timeout=300)
        assert out.returncode == 0, (out.stdout, out.stderr)
        assert "byte-identical ok" in out.stdout

        # Done jobs carry no snapshots: the journal now owns the result.
        resumed = Job.load(store, job_id)
        assert resumed.status()["status"] == "done"
        assert resumed.status()["checkpoints"] == 0
