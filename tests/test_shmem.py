"""Tests for the OpenSHMEM-flavored layer (repro.api.shmem)."""

import numpy as np
import pytest

from repro.api.shmem import ShmemContext, shmem_barrier_all
from repro.cluster import Cluster


def make_job(n=3):
    cluster = Cluster(n_nodes=n)
    return cluster, [ShmemContext(cluster, pe) for pe in range(n)]


class TestSymmetricAlloc:
    def test_every_pe_gets_a_buffer(self):
        cluster, ctxs = make_job(4)
        symm = ShmemContext.symmetric_alloc(cluster, 128)
        assert symm.nbytes == 128
        assert len({symm.on(pe).space for pe in range(4)}) == 4

    def test_unknown_pe_rejected(self):
        cluster, _ = make_job(2)
        symm = ShmemContext.symmetric_alloc(cluster, 8)
        with pytest.raises(KeyError, match="PE 9"):
            symm.on(9)


class TestPutGet:
    def test_put_then_quiet_moves_data(self):
        cluster, ctxs = make_job(2)
        symm = ShmemContext.symmetric_alloc(cluster, 64)

        def pe0():
            yield from ctxs[0].put(symm, np.full(64, 5, np.uint8), target_pe=1)
            yield from ctxs[0].quiet()

        p = cluster.spawn(pe0())
        cluster.run()
        assert p.ok
        assert (symm.view(1) == 5).all()

    def test_local_put_is_a_copy(self):
        cluster, ctxs = make_job(2)
        symm = ShmemContext.symmetric_alloc(cluster, 16)

        def pe0():
            yield from ctxs[0].put(symm, np.arange(16, dtype=np.uint8),
                                   target_pe=0)

        cluster.sim.run_until_event(cluster.spawn(pe0()))
        assert (symm.view(0) == np.arange(16, dtype=np.uint8)).all()

    def test_get_fetches_remote(self):
        cluster, ctxs = make_job(2)
        symm = ShmemContext.symmetric_alloc(cluster, 32)
        symm.view(1)[:] = 0x2F
        from repro.memory import Agent

        cluster[1].mem.record_write(0, Agent.CPU, symm.on(1))

        def pe0():
            data = yield from ctxs[0].get(symm, 32, source_pe=1)
            return data.copy()

        data = cluster.sim.run_until_event(cluster.spawn(pe0()))
        assert (data == 0x2F).all()

    def test_get_local(self):
        cluster, ctxs = make_job(2)
        symm = ShmemContext.symmetric_alloc(cluster, 8)
        symm.view(0)[:] = 3

        def pe0():
            data = yield from ctxs[0].get(symm, 8, source_pe=0)
            return data

        assert (cluster.sim.run_until_event(cluster.spawn(pe0())) == 3).all()

    def test_put_signal_and_wait_until(self):
        """The PGAS notification pattern of paper §4.2.5."""
        cluster, ctxs = make_job(2)
        data_buf = ShmemContext.symmetric_alloc(cluster, 64, "data")
        flag_buf = ShmemContext.symmetric_alloc(cluster, 4, "flag")

        def producer():
            yield cluster.sim.timeout(5_000)
            yield from ctxs[0].put_signal(data_buf, np.full(64, 9, np.uint8),
                                          flag_buf, target_pe=1)

        def consumer():
            yield from ctxs[1].wait_until(flag_buf, at_least=1)
            # Data must already be there (in-order delivery on one path).
            assert (data_buf.view(1) == 9).all()
            return cluster.sim.now

        cluster.spawn(producer())
        p = cluster.spawn(consumer())
        t = cluster.sim.run_until_event(p)
        assert t > 5_000


class TestQuiet:
    def test_quiet_with_no_pending_is_instant(self):
        cluster, ctxs = make_job(2)

        def pe0():
            yield from ctxs[0].quiet()
            return cluster.sim.now

        assert cluster.sim.run_until_event(cluster.spawn(pe0())) == 0

    def test_quiet_waits_for_all_puts(self):
        cluster, ctxs = make_job(3)
        symm = ShmemContext.symmetric_alloc(cluster, 1 << 16)

        def pe0():
            for target in (1, 2):
                yield from ctxs[0].put(symm, np.zeros(1 << 16, np.uint8),
                                       target_pe=target)
            t_before = cluster.sim.now
            yield from ctxs[0].quiet()
            return t_before, cluster.sim.now

        before, after = cluster.sim.run_until_event(cluster.spawn(pe0()))
        assert after > before  # 64 KB x2 takes real serialization time


class TestBarrierAll:
    def test_all_pes_released(self):
        cluster, _ = make_job(4)
        released = shmem_barrier_all(cluster)
        cluster.run()
        assert all(ev.triggered for ev in released.values())
