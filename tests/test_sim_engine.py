"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
    Timeout,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_run_empty_heap_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(123)
        sim.run()
        assert sim.now == 123

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(100))
        sim.schedule(300, lambda: fired.append(300))
        sim.run(until=200)
        assert fired == [100]
        assert sim.now == 200

    def test_run_until_inclusive_of_exact_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(200, lambda: fired.append(200))
        sim.run(until=200)
        assert fired == [200]


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for t in (50, 10, 30, 20, 40):
            sim.schedule(t, order.append, t)
        sim.run()
        assert order == [10, 20, 30, 40, 50]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(100, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_priority_beats_fifo_at_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(100, order.append, "normal")
        sim.schedule(100, order.append, "urgent", priority=0)
        sim.run()
        assert order == ["urgent", "normal"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(Simulator(), -5)


class TestEvent:
    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("payload")
        sim.run()
        assert ev.processed and ev.ok
        assert ev.value == "payload"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_value_of_untriggered_event_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_delayed_succeed(self):
        sim = Simulator()
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(sim.now))
        ev.succeed(delay=250)
        sim.run()
        assert seen == [250]

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42, delay=10)
        assert sim.run_until_event(ev) == 42

    def test_run_until_event_raises_on_failure(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"), delay=5)
        with pytest.raises(ValueError, match="boom"):
            sim.run_until_event(ev)

    def test_run_until_event_detects_starvation(self):
        sim = Simulator()
        ev = sim.event()  # never triggered
        with pytest.raises(SimulationError, match="ended before"):
            sim.run_until_event(ev)

    def test_fail_priority_orders_same_tick(self):
        """Regression: fail() accepts the same priority knob as succeed(),
        so failure paths keep deterministic same-tick ordering."""
        sim = Simulator()
        order = []
        ok = sim.event()
        ok.callbacks.append(lambda e: order.append("normal-succeed"))
        ok.succeed(delay=100)  # scheduled first at t=100, normal priority
        bad = sim.event()
        bad.callbacks.append(lambda e: order.append("urgent-fail"))
        bad.fail(RuntimeError("modeled failure"), delay=100, priority=0)
        sim.run()
        assert order == ["urgent-fail", "normal-succeed"]

    def test_fail_default_priority_is_fifo(self):
        sim = Simulator()
        order = []
        a = sim.event()
        a.callbacks.append(lambda e: order.append("fail"))
        a.fail(RuntimeError("x"), delay=10)
        b = sim.event()
        b.callbacks.append(lambda e: order.append("succeed"))
        b.succeed(delay=10)
        sim.run()
        assert order == ["fail", "succeed"]


class TestConditions:
    def test_allof_waits_for_all(self):
        sim = Simulator()
        a, b = sim.timeout(10, "a"), sim.timeout(30, "b")
        cond = AllOf(sim, [a, b])
        sim.run_until_event(cond)
        assert sim.now == 30
        assert cond.value == {a: "a", b: "b"}

    def test_anyof_fires_on_first(self):
        sim = Simulator()
        a, b = sim.timeout(10, "a"), sim.timeout(30, "b")
        cond = AnyOf(sim, [a, b])
        sim.run_until_event(cond)
        assert sim.now == 10
        assert a in cond.value

    def test_allof_empty_fires_immediately(self):
        sim = Simulator()
        cond = AllOf(sim, [])
        sim.run()
        assert cond.processed

    def test_allof_propagates_failure(self):
        sim = Simulator()
        good = sim.timeout(10)
        bad = sim.event()
        bad.fail(RuntimeError("child failed"), delay=5)
        cond = AllOf(sim, [good, bad])
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run_until_event(cond)

    def test_condition_rejects_foreign_events(self):
        sim1, sim2 = Simulator(), Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim1, [sim1.timeout(1), sim2.timeout(1)])

    def test_allof_with_already_processed_children(self):
        sim = Simulator()
        a = sim.timeout(5, "a")
        sim.run()
        cond = AllOf(sim, [a])
        sim.run()
        assert cond.processed and cond.value[a] == "a"


class TestStep:
    def test_step_empty_heap_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek_returns_next_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.timeout(77)
        assert sim.peek() == 77

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        err = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                err.append(e)

        sim.schedule(1, reenter)
        sim.run()
        assert len(err) == 1
