"""Unit tests for generator-coroutine processes (repro.sim.process)."""

import pytest

from repro.sim import Event, Interrupt, Process, ProcessKilled, SimulationError, Simulator


def test_simple_process_runs_and_returns():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)
        yield sim.timeout(20)
        return "done"

    p = sim.spawn(proc(sim))
    assert sim.run_until_event(p) == "done"
    assert sim.now == 30


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError, match="generator"):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(sim, name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.spawn(worker(sim, "a", 10))
    sim.spawn(worker(sim, "b", 15))
    sim.run()
    # At t=30 both fire; "b" scheduled its timeout first (at t=15, vs "a"
    # at t=20) so FIFO tie-break puts it first.
    assert log == [(10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")]


def test_join_on_child_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(25)
        return 99

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return value + 1

    p = sim.spawn(parent(sim))
    assert sim.run_until_event(p) == 100


def test_yield_on_already_finished_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return "early"

    def parent(sim, ch):
        yield sim.timeout(50)  # child long done by now
        value = yield ch
        return value

    ch = sim.spawn(child(sim))
    p = sim.spawn(parent(sim, ch))
    assert sim.run_until_event(p) == "early"
    assert sim.now == 50


def test_exception_in_process_fails_its_event():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(5)
        raise ValueError("kernel fault")

    p = sim.spawn(bad(sim))
    with pytest.raises(ValueError, match="kernel fault"):
        sim.run_until_event(p)


def test_exception_propagates_to_joining_parent():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(5)
        raise ValueError("child fault")

    def parent(sim):
        try:
            yield sim.spawn(bad(sim))
        except ValueError:
            return "handled"
        return "not handled"

    p = sim.spawn(parent(sim))
    assert sim.run_until_event(p) == "handled"


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as e:
            return f"caught {e}"

    p = sim.spawn(waiter(sim))
    ev.fail(RuntimeError("nic error"), delay=3)
    assert sim.run_until_event(p) == "caught nic error"


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()

        def sleeper(sim):
            try:
                yield sim.timeout(1000)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)
            return "slept"

        p = sim.spawn(sleeper(sim))
        sim.schedule(40, p.interrupt, "teardown")
        assert sim.run_until_event(p) == ("interrupted", "teardown", 40)

    def test_interrupted_process_can_rewait(self):
        sim = Simulator()

        def sleeper(sim):
            nap = sim.timeout(100)
            try:
                yield nap
            except Interrupt:
                pass
            yield nap  # original timeout still pending / may be processed
            return sim.now

        p = sim.spawn(sleeper(sim))
        sim.schedule(10, p.interrupt)
        assert sim.run_until_event(p) == 100

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.spawn(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestKill:
    def test_kill_stops_process(self):
        sim = Simulator()
        progressed = []

        def runner(sim):
            while True:
                yield sim.timeout(10)
                progressed.append(sim.now)

        p = sim.spawn(runner(sim))
        sim.schedule(35, p.kill)
        sim.run()
        assert progressed == [10, 20, 30]
        assert p.triggered and not p.ok
        assert isinstance(p.value, ProcessKilled)

    def test_kill_is_idempotent(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.spawn(quick(sim))
        sim.run()
        p.kill()  # no-op on finished process
        assert p.ok

    def test_process_can_catch_kill_and_cleanup(self):
        sim = Simulator()
        cleaned = []

        def careful(sim):
            try:
                yield sim.timeout(100)
            except ProcessKilled:
                cleaned.append(sim.now)
                raise

        p = sim.spawn(careful(sim))
        sim.schedule(5, p.kill)
        sim.run()
        assert cleaned == [5]


def test_process_yielding_non_event_errors():
    sim = Simulator()

    def bad(sim):
        yield 42  # type: ignore[misc]

    p = sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run_until_event(p)


def test_zero_delay_chain_is_fifo_with_other_work():
    """A process resuming through an already-processed event must not jump
    ahead of same-time callbacks that were scheduled earlier."""
    sim = Simulator()
    order = []

    def proc(sim, done):
        yield done  # already processed when we get here
        order.append("proc")

    done = sim.timeout(10)

    def at_10():
        order.append("callback")
        sim.spawn(proc(sim, done))

    sim.schedule(10, at_10)
    sim.schedule(10, order.append, "second-callback")
    sim.run()
    assert order == ["callback", "second-callback", "proc"]
