"""Unit tests for stores, resources and containers (repro.sim.resources)."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def producer(sim):
            yield sim.timeout(10)
            yield store.put("msg")

        def consumer(sim):
            item = yield store.get()
            return (sim.now, item)

        sim.spawn(producer(sim))
        c = sim.spawn(consumer(sim))
        assert sim.run_until_event(c) == (10, "msg")

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return sim.now, item

        c = sim.spawn(consumer(sim))
        sim.schedule(500, store.try_put, "late")
        assert sim.run_until_event(c) == (500, "late")

    def test_fifo_ordering_of_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        got = []

        def consumer(sim):
            for _ in range(5):
                got.append((yield store.get()))

        sim.spawn(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_ordering_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        served = []

        def consumer(sim, name):
            item = yield store.get()
            served.append((name, item))

        sim.spawn(consumer(sim, "first"))
        sim.spawn(consumer(sim, "second"))
        sim.schedule(10, store.try_put, "a")
        sim.schedule(20, store.try_put, "b")
        sim.run()
        assert served == [("first", "a"), ("second", "b")]

    def test_bounded_store_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        timeline = []

        def producer(sim):
            yield store.put("one")
            timeline.append(("put-one", sim.now))
            yield store.put("two")
            timeline.append(("put-two", sim.now))

        def consumer(sim):
            yield sim.timeout(100)
            item = yield store.get()
            timeline.append(("got", item, sim.now))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert ("put-one", 0) in timeline
        assert ("got", "one", 100) in timeline
        assert ("put-two", 100) in timeline

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1) and store.try_put(2)
        assert not store.try_put(3)
        assert len(store) == 2

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.try_put("x")
        assert store.try_get() == (True, "x")

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker(sim, i):
            yield res.acquire()
            active.append(i)
            peak.append(len(active))
            yield sim.timeout(10)
            active.remove(i)
            res.release()

        for i in range(5):
            sim.spawn(worker(sim, i))
        sim.run()
        assert max(peak) == 2
        assert sim.now == 30  # 5 jobs, 2-wide, 10 ns each

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants = []

        def worker(sim, i):
            yield res.acquire()
            grants.append(i)
            yield sim.timeout(1)
            res.release()

        for i in range(4):
            sim.spawn(worker(sim, i))
        sim.run()
        assert grants == [0, 1, 2, 3]

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_available_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=3)
        res.acquire()
        sim.run()
        assert res.available == 2


class TestContainer:
    def test_get_blocks_until_level(self):
        sim = Simulator()
        tank = Container(sim, init=0)
        done = []

        def consumer(sim):
            yield tank.get(10)
            done.append(sim.now)

        sim.spawn(consumer(sim))
        sim.schedule(5, tank.put, 4)
        sim.schedule(9, tank.put, 6)
        sim.run()
        assert done == [9]
        assert tank.level == 0

    def test_capacity_blocks_put(self):
        sim = Simulator()
        tank = Container(sim, init=8, capacity=10)
        done = []

        def producer(sim):
            yield tank.put(5)
            done.append(sim.now)

        sim.spawn(producer(sim))
        sim.schedule(30, lambda: sim.spawn(_drain(sim, tank, 5)))
        sim.run()
        assert done == [30]

    def test_invalid_amounts_rejected(self):
        sim = Simulator()
        tank = Container(sim, init=1)
        with pytest.raises(SimulationError):
            tank.get(0)
        with pytest.raises(SimulationError):
            tank.put(-1)

    def test_initial_level_validation(self):
        with pytest.raises(SimulationError):
            Container(Simulator(), init=-1)
        with pytest.raises(SimulationError):
            Container(Simulator(), init=5, capacity=4)


def _drain(sim, tank, amount):
    yield tank.get(amount)
