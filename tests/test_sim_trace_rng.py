"""Unit tests for tracing and random streams."""

import pytest

from repro.sim import RandomStreams, Tracer


class TestTracer:
    def test_point_events_recorded(self):
        tr = Tracer()
        tr.point(10, "node0", "gpu", "trigger", tag=3)
        tr.point(20, "node1", "nic", "deliver")
        assert len(tr.events) == 2
        assert tr.events[0].detail == {"tag": 3}

    def test_span_duration(self):
        tr = Tracer()
        tr.begin(100, "node0", "gpu", "kernel")
        span = tr.end(600, "node0", "gpu", "kernel")
        assert span.duration == 500

    def test_nested_spans_lifo(self):
        tr = Tracer()
        tr.begin(0, "n", "a", "outer")
        tr.begin(10, "n", "a", "outer")
        inner = tr.end(20, "n", "a", "outer")
        outer = tr.end(30, "n", "a", "outer")
        assert inner.start == 10 and outer.start == 0

    def test_end_without_begin_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.end(5, "n", "a", "phase")

    def test_filters(self):
        tr = Tracer()
        tr.point(1, "n0", "cpu", "send")
        tr.point(2, "n1", "cpu", "send")
        tr.point(3, "n0", "gpu", "trigger")
        assert len(tr.events_for(node="n0")) == 2
        assert len(tr.events_for(actor="cpu")) == 2
        assert len(tr.events_for(node="n0", phase="send")) == 1

    def test_first_last(self):
        tr = Tracer()
        tr.point(5, "n0", "nic", "deliver")
        tr.point(9, "n0", "nic", "deliver")
        assert tr.first("deliver").time == 5
        assert tr.last("deliver").time == 9
        assert tr.first("missing") is None

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.point(1, "n", "a", "p")
        tr.begin(1, "n", "a", "p")
        assert tr.end(2, "n", "a", "p") is None
        assert not tr.events and not tr.spans

    def test_open_spans_reported(self):
        tr = Tracer()
        tr.begin(0, "n", "a", "stuck")
        assert len(tr.open_spans()) == 1

    def test_clear(self):
        tr = Tracer()
        tr.point(1, "n", "a", "p")
        tr.clear()
        assert not tr.events


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        rs = RandomStreams(1)
        assert rs.stream("a") is rs.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).stream("workload").integers(0, 1 << 30, 10)
        b = RandomStreams(42).stream("workload").integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_streams_independent_of_creation_order(self):
        rs1 = RandomStreams(7)
        rs1.stream("x")
        seq_y_after = rs1.stream("y").integers(0, 1 << 30, 5)
        rs2 = RandomStreams(7)
        seq_y_first = rs2.stream("y").integers(0, 1 << 30, 5)
        assert (seq_y_after == seq_y_first).all()

    def test_different_names_differ(self):
        rs = RandomStreams(7)
        a = rs.stream("a").integers(0, 1 << 30, 20)
        b = rs.stream("b").integers(0, 1 << 30, 20)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("s").integers(0, 1 << 30, 20)
        b = RandomStreams(2).stream("s").integers(0, 1 << 30, 20)
        assert (a != b).any()

    def test_reset_restarts_streams(self):
        rs = RandomStreams(3)
        first = rs.stream("s").integers(0, 1 << 30, 5)
        rs.reset()
        again = rs.stream("s").integers(0, 1 << 30, 5)
        assert (first == again).all()
