"""Tests for the message-size sweep (repro.apps.size_sweep)."""

import pytest

from repro.apps.size_sweep import SweepPoint, size_sweep, sweep_all
from repro.config import KB, MB, default_config


@pytest.fixture(scope="module")
def gputn_points():
    return size_sweep(default_config(), "gputn",
                      sizes=(64, 16 * KB, 1 * MB, 8 * MB))


class TestShape:
    def test_latency_monotone_in_size(self, gputn_points):
        lats = [p.latency_ns for p in gputn_points]
        assert lats == sorted(lats)

    def test_bandwidth_grows_then_saturates(self, gputn_points):
        bws = [p.bandwidth_gbps for p in gputn_points]
        assert bws == sorted(bws)
        # At 8 MB the wire dominates; the one-shot ping cannot hide the
        # payload fill under the transfer, so ~84% of line rate is the
        # ceiling (ser + fill serialized).
        assert bws[-1] > 75.0
        assert bws[-1] <= 100.0

    def test_small_messages_are_overhead_bound(self, gputn_points):
        # 64 B at 100 Gbps would be 5 ns; overheads dominate by >100x.
        assert gputn_points[0].latency_ns > 500

    def test_point_math(self):
        p = SweepPoint.from_run(1250, 1000)
        assert p.bandwidth_gbps == pytest.approx(10.0)


class TestCrossStrategy:
    def test_gputn_leads_at_small_sizes_converges_at_large(self):
        data = sweep_all(default_config(), sizes=(64, 8 * MB))
        small = {s: pts[0].latency_ns for s, pts in data.items()}
        large = {s: pts[1].latency_ns for s, pts in data.items()}
        assert small["gputn"] < small["gds"] < small["hdn"]
        # At 8 MB, wire time dominates: strategies within 1%.
        spread = (max(large.values()) - min(large.values())) / min(large.values())
        assert spread < 0.01
