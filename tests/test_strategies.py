"""Tests for the strategy taxonomy and point-to-point flows."""

import pytest

from repro.strategies import (
    EVALUATED_STRATEGIES,
    STRATEGIES,
    get_flow,
    strategy_info,
)


class TestTable1Metadata:
    """The registry must reproduce paper Table 1 exactly."""

    def test_row_count_matches_paper(self):
        # 5 taxonomy rows + the CPU sanity baseline.
        assert len(STRATEGIES) == 6

    def test_hdn_row(self):
        info = strategy_info("hdn")
        assert not info.gpu_triggered and not info.intra_kernel
        assert info.gpu_overhead == "Kernel Boundary"
        assert info.cpu_overhead == "Network Stack"

    def test_gpu_native_row(self):
        info = strategy_info("gpu-native")
        assert info.gpu_triggered and info.intra_kernel
        assert info.gpu_overhead == "Network Stack"
        assert info.cpu_overhead == "NA"
        assert not info.evaluated

    def test_gpu_host_row(self):
        info = strategy_info("gpu-host")
        assert not info.gpu_triggered and info.intra_kernel
        assert info.cpu_overhead == "Service Threads, Network Stack"

    def test_gds_row(self):
        info = strategy_info("gds")
        assert info.gpu_triggered and not info.intra_kernel
        assert info.gpu_overhead == "Kernel Boundary, Trigger"

    def test_gputn_row(self):
        info = strategy_info("gputn")
        assert info.gpu_triggered and info.intra_kernel
        assert info.gpu_overhead == "Trigger"
        assert info.cpu_overhead == "Partial Network Stack"

    def test_only_gputn_combines_trigger_and_intra_kernel_cheaply(self):
        """The paper's claim: GPU-TN uniquely pairs GPU triggering with
        intra-kernel initiation without running a network stack on GPU."""
        both = [k for k, v in STRATEGIES.items()
                if v.gpu_triggered and v.intra_kernel]
        assert set(both) == {"gputn", "gpu-native"}
        assert STRATEGIES["gputn"].gpu_overhead == "Trigger"
        assert STRATEGIES["gpu-native"].gpu_overhead == "Network Stack"

    def test_evaluated_set(self):
        assert EVALUATED_STRATEGIES == ("cpu", "hdn", "gds", "gputn")
        for key in EVALUATED_STRATEGIES:
            assert STRATEGIES[key].evaluated

    def test_unknown_strategy_helpful_error(self):
        with pytest.raises(KeyError, match="known:"):
            strategy_info("quantum")

    def test_table_rows_render(self):
        row = strategy_info("gputn").table_row()
        assert row[1] == "Yes" and row[2] == "Yes"


class TestFlowRegistry:
    def test_all_evaluated_strategies_have_flows(self):
        for key in EVALUATED_STRATEGIES:
            init, target = get_flow(key)
            assert callable(init) and callable(target)

    def test_extension_flows_resolve(self):
        for key in ("gpu-host", "gpu-native"):
            init, target = get_flow(key)
            assert callable(init) and callable(target)

    def test_unknown_flow_rejected(self):
        with pytest.raises(KeyError, match="evaluated strategies"):
            get_flow("quantum-networking")
