"""The scale-out study end to end through the service layer.

Acceptance coverage for PR 7: a 64-node fat-tree Allreduce sweep completes
as one service-layer job with GPU-TN vs GDS/HDN latencies reported, every
point verified against the NumPy schedule oracle, and the campaign caches
and journals like the validate/faults campaigns do.
"""

import pytest

from repro.apps.topo_scale import (TOPO_SCHEDULES, TOPO_STRATEGIES,
                                   TOPO_TOPOLOGIES, run_topo_campaign)
from repro.runtime import ResultCache


class TestTopoCampaign:
    @pytest.fixture(scope="class")
    def small_grid(self):
        return run_topo_campaign(
            topologies=("star", "fat-tree"),
            schedules=("halving-doubling", "alltoall"),
            strategies=("gputn", "gds", "hdn"),
            node_counts=(16,), nbytes=16 * 1024)

    def test_all_points_verified(self, small_grid):
        assert small_grid.total == 2 * 2 * 3
        assert small_grid.ok and not small_grid.failures

    def test_by_case_groups_strategies(self, small_grid):
        cases = small_grid.by_case()
        assert set(cases) == {(t, s, 16) for t in ("star", "fat-tree")
                              for s in ("halving-doubling", "alltoall")}
        for times in cases.values():
            assert set(times) == {"gputn", "gds", "hdn"}
            assert all(t > 0 for t in times.values())

    def test_speedups_cover_host_driven_strategies(self, small_grid):
        for sp in small_grid.speedups().values():
            assert set(sp) == {"gds", "hdn"}

    def test_report_dict_is_json_shaped(self, small_grid):
        import json

        doc = small_grid.to_dict()
        assert doc["total"] == small_grid.total and doc["ok"]
        json.dumps(doc)  # serializable

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_topo_campaign(topologies=(), node_counts=(4,))

    def test_defaults_are_sane(self):
        assert set(TOPO_STRATEGIES) == {"gputn", "gds", "hdn"}
        assert "halving-doubling" in TOPO_SCHEDULES
        assert "fat-tree" in TOPO_TOPOLOGIES


class TestSixtyFourNodeAcceptance:
    def test_fat_tree_allreduce_sweep_reports_gputn_comparison(self):
        """The headline acceptance run: 64 nodes, fat-tree, Allreduce,
        all three GPU-driven backends, through the service layer."""
        report = run_topo_campaign(
            topologies=("fat-tree",), schedules=("halving-doubling",),
            strategies=("gputn", "gds", "hdn"), node_counts=(64,),
            nbytes=16 * 1024)
        assert report.ok and report.total == 3
        times = report.by_case()[("fat-tree", "halving-doubling", 64)]
        speedup = report.speedups()[("fat-tree", "halving-doubling", 64)]
        # GPU-TN's fire-from-kernel path beats both host-driven modes at
        # this scale (the paper's claim, extrapolated past its 8 nodes).
        assert times["gputn"] < times["gds"] < times["hdn"]
        assert speedup["hdn"] > speedup["gds"] > 1.0


class TestCampaignCaching:
    def test_second_run_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        kwargs = dict(topologies=("star",), schedules=("alltoall",),
                      strategies=("gputn",), node_counts=(8,),
                      nbytes=8 * 1024)
        first = run_topo_campaign(cache=cache, **kwargs)
        second = run_topo_campaign(cache=cache, **kwargs)
        assert first.ok and second.ok
        assert second.cache_stats["hits"] == second.total
        assert [r.metrics for r in first.records] == \
               [r.metrics for r in second.records]
