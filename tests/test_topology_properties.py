"""Property tests for the scale-out topology fabric (DESIGN.md §"Scale-out
topologies").

The routing invariants the simulator leans on, checked over randomly drawn
fabrics:

* connectivity -- every distinct host pair has a well-formed route;
* determinism -- two fresh instances of the same topology produce
  identical routes (a precondition for reproducible contention);
* structural deadlock freedom -- every route follows its discipline's
  restricted shape (valley-free up/down, minimal l-g-l, dimension order),
  which is what makes the discipline deadlock-free on paper;
* hop counts never exceed the closed-form diameter, and full-capacity
  instances achieve it;
* the closed-form ``path_latency_ns`` equals the hop-walk sum the Fabric
  charges, so the uncontended latency formula stays exact on every fabric.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.net import (DragonflyTopology, FatTreeTopology, Fabric, Message,
                       StarTopology, TorusTopology, make_topology)
from repro.sim import Simulator

LINK, SWITCH = 100, 100


def fat_tree(n):
    return FatTreeTopology(n, link_latency_ns=LINK, switch_latency_ns=SWITCH)


def dragonfly(n):
    return DragonflyTopology(n, link_latency_ns=LINK, switch_latency_ns=SWITCH)


def torus_of(n):
    return make_topology("torus", n, LINK, SWITCH)


BUILDERS = {"fat-tree": fat_tree, "dragonfly": dragonfly, "torus": torus_of}

topo_case = st.tuples(st.sampled_from(sorted(BUILDERS)),
                      st.integers(min_value=2, max_value=24))


def all_pairs(topo):
    return [(s, d) for s in topo.nodes for d in topo.nodes if s != d]


# --------------------------------------------------------------------------
# Connectivity + well-formedness
# --------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(case=topo_case)
def test_property_every_pair_routes(case):
    kind, n = case
    topo = BUILDERS[kind](n)
    for src, dst in all_pairs(topo):
        path = topo.route(src, dst)
        assert path[0] == src and path[-1] == dst and len(path) >= 3
        # Hosts appear only at the endpoints -- no route hairpins through
        # another host's NIC.
        assert not any(v.startswith("node") for v in path[1:-1])
        assert topo.hop_count(src, dst) == len(path) - 2
        walk = (len(path) - 2) * SWITCH + sum(
            topo.segment_latency_ns(a, b) for a, b in zip(path, path[1:]))
        assert topo.path_latency_ns(src, dst) == walk


@settings(max_examples=25, deadline=None)
@given(case=topo_case)
def test_property_routing_is_deterministic(case):
    kind, n = case
    one, two = BUILDERS[kind](n), BUILDERS[kind](n)
    for src, dst in all_pairs(one):
        assert one.route(src, dst) == two.route(src, dst)


@settings(max_examples=25, deadline=None)
@given(case=topo_case)
def test_property_hops_bounded_by_diameter(case):
    kind, n = case
    topo = BUILDERS[kind](n)
    bound = topo.diameter_hops()
    assert max(topo.hop_count(s, d) for s, d in all_pairs(topo)) <= bound


@pytest.mark.parametrize("topo,expect", [
    (FatTreeTopology(16, k=4), 5),        # full k=4: cross-pod worst case
    (FatTreeTopology(4, k=4), 3),         # one pod: edge-agg-edge
    (FatTreeTopology(2, k=4), 1),         # one edge switch
    (DragonflyTopology(12, a=2, g=3, p=2), 4),
    (TorusTopology((4, 4)), 5),
    (TorusTopology((5,)), 3),
])
def test_full_instances_achieve_diameter(topo, expect):
    assert topo.diameter_hops() == expect
    assert max(topo.hop_count(s, d) for s, d in all_pairs(topo)) == expect


# --------------------------------------------------------------------------
# Structural deadlock freedom: each discipline's restricted route shape
# --------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=24))
def test_property_fat_tree_routes_are_valley_free(n):
    topo = fat_tree(n)
    tier = {"node": "H", "ftE": "E", "ftA": "A", "ftC": "C"}

    def classify(v):
        for prefix, t in tier.items():
            if v.startswith(prefix):
                return t
        raise AssertionError(f"unknown vertex {v}")

    for src, dst in all_pairs(topo):
        shape = "".join(classify(v) for v in topo.route(src, dst))
        # Up to the lowest common tier, straight down -- never E-A-E-A.
        assert shape in ("HEH", "HEAEH", "HEACAEH"), shape


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=24))
def test_property_dragonfly_routes_are_minimal_lgl(n):
    topo = dragonfly(n)
    for src, dst in all_pairs(topo):
        path = topo.route(src, dst)
        routers = path[1:-1]
        assert len(routers) <= 4  # l-g-l is at most 4 routers end to end
        groups = [r.split(".", 1)[0] for r in routers]
        # At most one global traversal, i.e. the group sequence changes at
        # most once -- the defining property of minimal dragonfly routing.
        changes = sum(a != b for a, b in zip(groups, groups[1:]))
        assert changes <= 1
        assert groups[0] == f"dfR{topo._locate(src)[0]}"
        assert groups[-1] == f"dfR{topo._locate(dst)[0]}"


@settings(max_examples=25, deadline=None)
@given(dims=st.lists(st.integers(min_value=1, max_value=5),
                     min_size=1, max_size=3).filter(
                         lambda d: 2 <= math.prod(d) <= 32))
def test_property_torus_routes_are_dimension_ordered(dims):
    topo = TorusTopology(dims)

    def coord(r):
        return tuple(int(c) for c in r[2:].split("."))

    for src, dst in all_pairs(topo):
        routers = [coord(r) for r in topo.route(src, dst)[1:-1]]
        touched = []
        for a, b in zip(routers, routers[1:]):
            diff = [i for i in range(len(dims)) if a[i] != b[i]]
            assert len(diff) == 1  # one lattice step at a time
            i = diff[0]
            assert (b[i] - a[i]) % dims[i] in (1, dims[i] - 1)
            touched.append(i)
        # Dimension-order: the sequence of corrected dimensions never
        # decreases (the e-cube deadlock-freedom argument).
        assert touched == sorted(touched)
        # Minimality: per-dimension steps == shortest wrap distance.
        a, b = coord(topo.route(src, dst)[1]), coord(topo.route(src, dst)[-2])
        for i, size in enumerate(dims):
            fwd = (b[i] - a[i]) % size
            assert touched.count(i) == min(fwd, size - fwd)


# --------------------------------------------------------------------------
# Spec-string factory
# --------------------------------------------------------------------------

def test_make_topology_specs_round_trip():
    assert isinstance(make_topology("star", 4), StarTopology)
    ft = make_topology("fat-tree:k=4", 16)
    assert isinstance(ft, FatTreeTopology) and ft.k == 4
    assert isinstance(make_topology("fattree", 16), FatTreeTopology)
    tor = make_topology("torus:2x3", 6)
    assert isinstance(tor, TorusTopology) and tor.dims == (2, 3)
    df = make_topology("dragonfly:a=2,g=3,p=2", 12)
    assert (df.a, df.g, df.p) == (2, 3, 2)
    for n in (2, 7, 12, 16):
        assert len(list(make_topology("torus", n).nodes)) == n


@pytest.mark.parametrize("spec,n", [
    ("mesh", 4),                 # unknown topology name
    ("star:k=4", 4),             # star takes no parameters
    ("fat-tree:k=3", 4),         # odd arity
    ("fat-tree:pods=2", 4),      # unknown parameter
    ("fat-tree:k", 4),           # malformed key=value
    ("torus:4x4", 12),           # dims don't multiply to n_nodes
    ("dragonfly:a=1,g=9,p=1", 16),  # capacity 9 < 16
])
def test_make_topology_rejects_bad_specs(spec, n):
    with pytest.raises(ValueError):
        make_topology(spec, n)


# --------------------------------------------------------------------------
# Fabric integration: closed form == hop walk on real hardware paths
# --------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(case=topo_case, nbytes=st.integers(min_value=0, max_value=1 << 18))
def test_property_uncontended_delivery_matches_closed_form(case, nbytes):
    kind, n = case
    topo = BUILDERS[kind](n)
    sim = Simulator()
    fabric = Fabric(sim, topo, NetworkConfig())
    src, dst = topo.nodes[0], topo.nodes[-1]
    ev = fabric.transmit(Message(src=src, dst=dst, nbytes=nbytes))
    delivered = sim.run_until_event(ev)
    assert delivered.delivered_at == fabric.uncontended_latency_ns(
        src, dst, nbytes)


def test_switch_port_contention_adds_latency():
    """Two flows sharing one fat-tree uplink serialize behind it; a flow on
    a disjoint path is unaffected."""
    topo = FatTreeTopology(16, k=4)
    sim = Simulator()
    net = NetworkConfig()
    fabric = Fabric(sim, topo, net)
    nbytes = 1 << 16
    # node0 and node1 share edge switch ftE0.0; both target pod-1 hosts
    # whose in-pod position hashes to the same agg (port % 2 == 0), so both
    # routes traverse the ftE0.0 -> ftA0.0 output port.
    r0, r1 = topo.route("node0", "node4"), topo.route("node1", "node6")
    assert r0[1:3] == r1[1:3] == ["ftE0.0", "ftA0.0"]
    ev0 = fabric.transmit(Message(src="node0", dst="node4", nbytes=nbytes))
    ev1 = fabric.transmit(Message(src="node1", dst="node6", nbytes=nbytes))
    # Disjoint flow (different edge + agg + core) from pod 2 to pod 3.
    ev2 = fabric.transmit(Message(src="node8", dst="node13", nbytes=nbytes))
    sim.run()
    ser = net.serialization_ns(nbytes)
    base01 = fabric.uncontended_latency_ns("node0", "node4", nbytes)
    assert ev0.value.delivered_at == base01
    # The loser queues for the shared switch port: a full extra
    # serialization delay beyond its own uncontended floor.
    assert ev1.value.delivered_at >= base01 + ser
    assert ev2.value.delivered_at == fabric.uncontended_latency_ns(
        "node8", "node13", nbytes)
