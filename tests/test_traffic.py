"""Traffic generators, DL traces and the background-load attachment.

Covers the repro.traffic determinism contract (same seed -> same event
list, named substreams keep patterns independent), per-pattern shape
invariants, and end-to-end BackgroundLoad delivery accounting on a live
cluster with the reliable transport armed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ReliabilityConfig, default_config
from repro.sim.rng import RandomStreams
from repro.traffic import (BackgroundLoad, IncastTraffic, OnOffTraffic,
                           PermutationTraffic, PoissonTraffic, TrafficEvent,
                           attach_traffic, llm_training_trace,
                           moe_inference_trace)

HORIZON = 50_000

PATTERNS = [
    PoissonTraffic(mean_gap_ns=2_000, nbytes=512),
    OnOffTraffic(on_ns=3_000, off_ns=5_000, gap_ns=500, nbytes=256),
    PermutationTraffic(gap_ns=1_500, nbytes=1024),
    IncastTraffic(period_ns=4_000, nbytes=512, sink=0, fan=3),
]


class TestEventValidation:
    def test_rejects_self_send(self):
        with pytest.raises(ValueError, match="self-directed"):
            TrafficEvent(0, 1, 1, 64)

    def test_rejects_negative_time_and_empty_payload(self):
        with pytest.raises(ValueError):
            TrafficEvent(-1, 0, 1, 64)
        with pytest.raises(ValueError):
            TrafficEvent(0, 0, 1, 0)


@pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.name)
class TestPatternContract:
    def test_events_are_valid_and_within_horizon(self, pattern):
        events = pattern.events(8, HORIZON, RandomStreams(0))
        assert events
        for ev in events:
            assert 0 <= ev.at_ns < HORIZON
            assert 0 <= ev.src < 8 and 0 <= ev.dst < 8
            assert ev.src != ev.dst and ev.nbytes > 0

    def test_same_seed_replays_identically(self, pattern):
        a = pattern.events(8, HORIZON, RandomStreams(42))
        b = pattern.events(8, HORIZON, RandomStreams(42))
        assert a == b

    def test_too_small_cluster_rejected(self, pattern):
        with pytest.raises(ValueError):
            pattern.events(1, HORIZON, RandomStreams(0))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       n=st.integers(min_value=2, max_value=12))
def test_property_permutation_is_a_self_free_total_map(seed, n):
    events = PermutationTraffic(gap_ns=1_000, nbytes=64).events(
        n, 10_000, RandomStreams(seed))
    dst_of = {}
    for ev in events:
        assert ev.src != ev.dst
        assert dst_of.setdefault(ev.src, ev.dst) == ev.dst  # one partner
    assert set(dst_of) == set(range(n))  # every source streams


class TestIncast:
    def test_all_events_target_the_sink(self):
        events = IncastTraffic(period_ns=2_000, nbytes=64, sink=3).events(
            8, 10_000, RandomStreams(0))
        assert events and all(ev.dst == 3 for ev in events)
        # fan=0: every other node fires each period.
        per_period = {}
        for ev in events:
            per_period.setdefault(ev.at_ns, set()).add(ev.src)
        assert all(srcs == set(range(8)) - {3} for srcs in per_period.values())

    def test_fan_limits_sources_per_burst(self):
        events = IncastTraffic(period_ns=2_000, nbytes=64, fan=3).events(
            8, 20_000, RandomStreams(1))
        per_period = {}
        for ev in events:
            per_period.setdefault(ev.at_ns, []).append(ev.src)
        assert all(len(srcs) == 3 == len(set(srcs))
                   for srcs in per_period.values())

    def test_sink_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            IncastTraffic(period_ns=1, nbytes=1, sink=8).events(
                4, 1_000, RandomStreams(0))


class TestSubstreamIndependence:
    def test_patterns_do_not_perturb_each_other(self):
        # Expanding another pattern from the same RandomStreams must not
        # shift this one's draws: each draws only from its named streams.
        alone = RandomStreams(7)
        poisson_alone = PoissonTraffic(2_000, 512).events(4, HORIZON, alone)
        shared = RandomStreams(7)
        IncastTraffic(4_000, 512).events(4, HORIZON, shared)
        OnOffTraffic(3_000, 5_000, 500, 256).events(4, HORIZON, shared)
        assert PoissonTraffic(2_000, 512).events(4, HORIZON, shared) \
            == poisson_alone


class TestTraces:
    def test_llm_trace_is_periodic_ring_and_draw_free(self):
        events = llm_training_trace(4, horizon_ns=30_000, step_ns=10_000,
                                    nbytes=2048)
        assert events == llm_training_trace(4, horizon_ns=30_000,
                                            step_ns=10_000, nbytes=2048)
        assert all(ev.dst == (ev.src + 1) % 4 for ev in events)
        # Two steps fit below the horizon, (n-1) rounds x n nodes each.
        assert len(events) == 2 * 3 * 4
        assert {ev.at_ns // 10_000 for ev in events} == {1, 2}

    def test_moe_trace_fans_to_k_distinct_experts(self):
        events = moe_inference_trace(6, horizon_ns=9_000, dispatch_ns=4_000,
                                     nbytes=128, experts_per_token=2, seed=3)
        assert events == moe_inference_trace(6, horizon_ns=9_000,
                                             dispatch_ns=4_000, nbytes=128,
                                             experts_per_token=2, seed=3)
        per_dispatch = {}
        for ev in events:
            assert ev.src != ev.dst
            per_dispatch.setdefault((ev.at_ns, ev.src), []).append(ev.dst)
        for dsts in per_dispatch.values():
            assert len(dsts) == 2 == len(set(dsts))

    def test_moe_hotspots_rotate(self):
        events = moe_inference_trace(8, horizon_ns=50_000, dispatch_ns=2_000,
                                     nbytes=64, seed=0)
        assert len({ev.dst for ev in events}) > 2


class TestBackgroundLoad:
    def _cluster(self, n=3):
        cluster = Cluster(n_nodes=n, config=default_config())
        cluster.enable_reliability(ReliabilityConfig())
        return cluster

    def test_replays_events_and_counts_deliveries(self):
        cluster = self._cluster()
        events = [TrafficEvent(1_000, 0, 1, 256),
                  TrafficEvent(2_000, 1, 2, 512),
                  TrafficEvent(2_000, 2, 0, 128)]
        load = attach_traffic(cluster, events)
        cluster.run(until=5_000_000)
        assert load.stats["offered"] == load.stats["sent"] == 3
        assert load.stats["delivered"] == 3 and load.stats["failed"] == 0
        assert load.stats["bytes_delivered"] == 256 + 512 + 128
        assert load.counters() == {"traffic_offered": 3, "traffic_sent": 3,
                                   "traffic_delivered": 3,
                                   "traffic_bytes_delivered": 896}

    def test_pattern_expansion_needs_horizon(self):
        cluster = self._cluster()
        with pytest.raises(ValueError, match="horizon"):
            attach_traffic(cluster, PoissonTraffic(2_000, 256))

    def test_pattern_attaches_and_delivers(self):
        cluster = self._cluster(n=4)
        load = attach_traffic(cluster, PoissonTraffic(5_000, 256),
                              horizon_ns=30_000, streams=RandomStreams(2))
        cluster.run(until=5_000_000)
        assert load.stats["offered"] > 0
        assert load.stats["delivered"] == load.stats["offered"]

    def test_rank_out_of_range_rejected(self):
        cluster = self._cluster()
        with pytest.raises(ValueError, match="rank out of range"):
            BackgroundLoad(cluster, [TrafficEvent(0, 0, 7, 64)])

    def test_start_is_idempotent(self):
        cluster = self._cluster()
        load = BackgroundLoad(cluster, [TrafficEvent(1_000, 0, 1, 64)])
        load.start().start()
        cluster.run(until=5_000_000)
        assert load.stats["sent"] == 1 and load.stats["delivered"] == 1
