"""Tests for the go-back-N reliable transport under injected faults.

NIC-level coverage: recovery under loss/corruption, exactly-once dedup,
window flow control, deterministic retry-budget exhaustion, injector
behavior (jitter, flaps, rx stalls), the invisibility of unarmed fault
plans, and fabric ingress serialization under concurrent senders.
"""

import numpy as np
import pytest

from repro.config import (FaultConfig, LinkFlap, NicStall, ReliabilityConfig,
                          default_config)
from repro.faults import FaultPlan
from repro.memory import Agent
from repro.nic import TransportError

from conftest import build_nic_testbed


def armed_testbed(n_nodes=2, reliability=None, faults=None, rng=0):
    tb = build_nic_testbed(n_nodes)
    for nic in tb.nics.values():
        nic.enable_reliability(reliability or ReliabilityConfig())
    plan = FaultPlan(faults, rng=rng).attach(tb.fabric) if faults else None
    return tb, plan


def stream_puts(tb, count, nbytes=256, src="n0", dst="n1"):
    """Post ``count`` sequential puts; returns (handles, dst buffers)."""
    handles, bufs = [], []
    src_buf = tb.alloc_registered(src, nbytes, "src")
    for i in range(count):
        dst_buf = tb.alloc_registered(dst, nbytes, f"dst{i}")
        src_buf.view(np.uint8)[:] = (i + 1) & 0xFF
        tb.mems[src].record_write(tb.sim.now, Agent.CPU, src_buf)
        h = tb.nics[src].post_put(src_buf.addr(), nbytes, dst, dst_buf.addr())
        tb.sim.run_until_event(h.delivered)
        handles.append(h)
        bufs.append(dst_buf)
    return handles, bufs


class TestZeroFaultBaseline:
    def test_no_retransmits_without_faults(self):
        tb, _ = armed_testbed()
        handles, bufs = stream_puts(tb, 5)
        tb.sim.run()  # let the final ACK flow back
        stats = tb.nics["n0"].transport.stats
        assert stats["tx_data"] == 5 and stats["acks_rx"] == 5
        assert stats["retransmits"] == 0 and stats["timeouts"] == 0
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_unarmed_plan_is_timing_invisible(self):
        def one_put(plan):
            tb = build_nic_testbed()
            if plan:
                FaultPlan(FaultConfig(), rng=0).attach(tb.fabric)
            src = tb.alloc_registered("n0", 512, "src")
            dst = tb.alloc_registered("n1", 512, "dst")
            h = tb.nics["n0"].post_put(src.addr(), 512, "n1", dst.addr())
            delivered = tb.sim.run_until_event(h.delivered)
            return delivered.delivered_at, dict(tb.fabric.stats)

        assert one_put(plan=False) == one_put(plan=True)

    def test_unarmed_plan_counters_empty(self):
        tb, plan = armed_testbed(faults=FaultConfig())
        stream_puts(tb, 3)
        assert plan.counters() == {}


class TestLossRecovery:
    def test_heavy_loss_recovers_payloads(self):
        tb, plan = armed_testbed(
            reliability=ReliabilityConfig(retransmit_timeout_ns=5_000),
            faults=FaultConfig(drop_prob=0.3), rng=11)
        _, bufs = stream_puts(tb, 20)
        stats = tb.nics["n0"].transport.stats
        assert plan.counters().get("drops", 0) > 0
        assert stats["retransmits"] > 0
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_windowed_pipeline_accepts_in_order(self):
        tb, _ = armed_testbed(
            reliability=ReliabilityConfig(window=3,
                                          retransmit_timeout_ns=5_000),
            faults=FaultConfig(drop_prob=0.25), rng=5)
        accepts = []
        tb.nics["n1"].transport.probes.append(
            lambda kind, peer, seq, now: kind == "accept"
            and accepts.append(seq))
        nbytes = 128
        src = tb.alloc_registered("n0", nbytes, "src")
        handles = []
        for i in range(12):
            dst = tb.alloc_registered("n1", nbytes, f"dst{i}")
            handles.append(tb.nics["n0"].post_put(src.addr(), nbytes, "n1",
                                                  dst.addr()))
        tb.sim.run()
        assert accepts == list(range(12))
        assert all(h.delivered.ok for h in handles)

    def test_duplicate_data_accepted_exactly_once(self):
        # Eat the first few ACKs: the sender's (RTT-floored) timer fires,
        # go-back-N resends the already-delivered window, and the receiver
        # must dedup every copy.  (A sub-RTT configured timeout no longer
        # produces dups -- the transport floors the RTO at 2x path RTT.)
        class _DropAcks:
            def __init__(self, n):
                self.left = n

            def on_transmit(self, msg, now):
                from repro.net.fabric import NO_FAULT, FaultDecision
                if msg.kind.is_control and self.left > 0:
                    self.left -= 1
                    return FaultDecision(drop=True)
                return NO_FAULT

            def adjust_delivery(self, dst, t):
                return t

        tb, _ = armed_testbed(
            reliability=ReliabilityConfig(retransmit_timeout_ns=200,
                                          max_retries=10))
        tb.fabric.install_interposer(_DropAcks(3))
        accepts = []
        tb.nics["n1"].transport.probes.append(
            lambda kind, peer, seq, now: kind == "accept"
            and accepts.append(seq))
        _, bufs = stream_puts(tb, 6)
        tb.sim.run()
        stats = tb.nics["n1"].transport.stats
        assert stats["rx_dups"] > 0  # the scenario actually produced dups
        assert accepts == list(range(6))  # ... but accepted exactly once
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_corruption_nacked_and_retransmitted(self):
        tb, plan = armed_testbed(
            reliability=ReliabilityConfig(retransmit_timeout_ns=5_000),
            faults=FaultConfig(corrupt_prob=0.4), rng=3)
        _, bufs = stream_puts(tb, 10)
        assert plan.counters().get("corruptions", 0) > 0
        assert tb.nics["n1"].transport.stats["rx_corrupt"] > 0
        assert tb.nics["n1"].transport.stats["nacks_tx"] > 0
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()


class TestGiveUp:
    def _total_loss_run(self):
        tb, _ = armed_testbed(
            reliability=ReliabilityConfig(retransmit_timeout_ns=1_000,
                                          max_retries=2),
            faults=FaultConfig(drop_prob=1.0), rng=0)
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        tb.sim.run()
        return tb, h

    def test_budget_exhaustion_raises_structured_error(self):
        tb, h = self._total_loss_run()
        assert h.delivered.triggered and not h.delivered.ok
        err = h.delivered.value
        assert isinstance(err, TransportError)
        assert (err.src, err.dst, err.seq) == ("n0", "n1", 0)
        assert err.attempts == 3  # gives up on the round exceeding budget 2
        assert err.to_dict()["dst"] == "n1"

    def test_give_up_is_deterministic_and_terminates(self):
        runs = []
        for _ in range(2):
            tb, h = self._total_loss_run()
            # run() returned => the heap drained: no timer leak, no hang.
            assert tb.sim.peek() is None
            runs.append((tb.sim.now, h.delivered.value.to_dict()))
        assert runs[0] == runs[1]

    def test_sends_after_death_fail_immediately(self):
        tb, _ = self._total_loss_run()
        src = tb.alloc_registered("n0", 64, "src2")
        dst = tb.alloc_registered("n1", 64, "dst2")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        tb.sim.run()
        assert not h.delivered.ok
        assert isinstance(h.delivered.value, TransportError)


class TestInjectors:
    def test_jitter_delays_but_delivers(self):
        def delivered_at(jitter):
            tb, _ = armed_testbed(
                faults=FaultConfig(jitter_ns=jitter) if jitter else None)
            src = tb.alloc_registered("n0", 256, "src")
            dst = tb.alloc_registered("n1", 256, "dst")
            h = tb.nics["n0"].post_put(src.addr(), 256, "n1", dst.addr())
            return tb.sim.run_until_event(h.delivered).delivered_at

        assert delivered_at(5_000) > delivered_at(0)

    def test_link_flap_outage_recovers_after_up(self):
        flap = LinkFlap(node="n0", down_at=0, up_at=30_000)
        tb, plan = armed_testbed(
            reliability=ReliabilityConfig(retransmit_timeout_ns=8_000,
                                          max_retries=8),
            faults=FaultConfig(flaps=(flap,)), rng=0)
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        delivered = tb.sim.run_until_event(h.delivered)
        assert delivered.delivered_at >= flap.up_at
        assert plan.counters()["flap_drops"] > 0

    def test_rx_stall_defers_delivery_to_window_end(self):
        stall = NicStall(node="n1", start=0, end=20_000)
        tb, plan = armed_testbed(faults=FaultConfig(stalls=(stall,)), rng=0)
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        delivered = tb.sim.run_until_event(h.delivered)
        assert delivered.delivered_at >= stall.end
        assert plan.counters()["stall_deferrals"] > 0

    def test_plan_is_seed_deterministic(self):
        def run_once():
            tb, plan = armed_testbed(
                reliability=ReliabilityConfig(retransmit_timeout_ns=5_000),
                faults=FaultConfig(drop_prob=0.3, corrupt_prob=0.1,
                                   jitter_ns=500), rng=42)
            stream_puts(tb, 10)
            return tb.sim.now, plan.counters(), dict(
                tb.nics["n0"].transport.stats)

        assert run_once() == run_once()


class TestFabricSerializationUnderConcurrency:
    """Satellite coverage: the ingress port stays serialized when many
    senders converge on one destination (per-pair FIFO is a transport
    correctness precondition)."""

    def test_concurrent_senders_serialize_at_ingress(self):
        tb = build_nic_testbed(4)
        net = default_config().network
        nbytes = 4096
        handles = {}
        for src in ("n1", "n2", "n3"):
            buf = tb.alloc_registered(src, nbytes, f"{src}.src")
            handles[src] = [
                tb.nics[src].post_put(
                    buf.addr(), nbytes, "n0",
                    tb.alloc_registered("n0", nbytes, f"{src}.dst{i}").addr())
                for i in range(3)
            ]
        tb.sim.run()
        arrivals = sorted(
            h.delivered.value.delivered_at
            for hs in handles.values() for h in hs)
        ser = net.serialization_ns(nbytes)
        for earlier, later in zip(arrivals, arrivals[1:]):
            assert later - earlier >= ser  # no overlapping ingress occupancy
        for src, hs in handles.items():  # per-pair FIFO preserved
            times = [h.delivered.value.delivered_at for h in hs]
            assert times == sorted(times)
