"""Selective-repeat ARQ with SACK, pacing and seeded backoff jitter.

NIC-level coverage of the ISSUE-8 transport upgrades: exactly-once
in-order delivery under seeded drop plans (property-tested across
seeds), per-packet retransmission (no go-back-N storms on a clean
window), the receiver reorder buffer, AIMD window pacing bounds, the
``make_transport`` mode factory, and the dedicated
``transport.backoff.<node>`` jitter substream (ISSUE-8 satellite 1).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig, ReliabilityConfig
from repro.faults import FaultPlan
from repro.memory import Agent
from repro.nic import TransportError
from repro.nic.transport import (ReliableTransport, SelectiveRepeatTransport,
                                 make_transport)

from conftest import build_nic_testbed


def sr_config(**kw):
    kw.setdefault("mode", "selective-repeat")
    kw.setdefault("retransmit_timeout_ns", 5_000)
    return ReliabilityConfig(**kw)


def armed_testbed(n_nodes=2, reliability=None, faults=None, rng=0):
    tb = build_nic_testbed(n_nodes)
    for nic in tb.nics.values():
        nic.enable_reliability(reliability or sr_config())
    plan = FaultPlan(faults, rng=rng).attach(tb.fabric) if faults else None
    return tb, plan


def stream_puts(tb, count, nbytes=256, src="n0", dst="n1", pipelined=False):
    """Post ``count`` sequential (or pipelined) puts; returns handles+bufs.

    Pipelined mode uses one source buffer per message: payloads are read
    at delivery time, so in-flight sends must not share a buffer."""
    handles, bufs = [], []
    src_buf = None
    for i in range(count):
        if src_buf is None or pipelined:
            src_buf = tb.alloc_registered(src, nbytes, f"src{i}")
        dst_buf = tb.alloc_registered(dst, nbytes, f"dst{i}")
        src_buf.view(np.uint8)[:] = (i + 1) & 0xFF
        tb.mems[src].record_write(tb.sim.now, Agent.CPU, src_buf)
        h = tb.nics[src].post_put(src_buf.addr(), nbytes, dst, dst_buf.addr())
        if not pipelined:
            tb.sim.run_until_event(h.delivered)
        handles.append(h)
        bufs.append(dst_buf)
    return handles, bufs


def watch_accepts(tb, dst="n1"):
    accepts = []
    tb.nics[dst].transport.probes.append(
        lambda kind, peer, seq, now: kind == "accept" and accepts.append(seq))
    return accepts


class TestFactory:
    def test_mode_selects_engine(self):
        tb = build_nic_testbed()
        assert isinstance(make_transport(tb.nics["n0"], ReliabilityConfig()),
                          ReliableTransport)
        sr = make_transport(tb.nics["n1"], sr_config())
        assert isinstance(sr, SelectiveRepeatTransport)

    def test_enable_reliability_routes_through_factory(self):
        tb = build_nic_testbed()
        tb.nics["n0"].enable_reliability(sr_config())
        assert isinstance(tb.nics["n0"].transport, SelectiveRepeatTransport)

    def test_bad_mode_rejected_at_config(self):
        with pytest.raises(ValueError, match="mode"):
            ReliabilityConfig(mode="stop-and-wait")


class TestCleanPath:
    def test_no_retransmits_without_faults(self):
        tb, _ = armed_testbed()
        _, bufs = stream_puts(tb, 5)
        tb.sim.run()
        stats = tb.nics["n0"].transport.stats
        assert stats["tx_data"] == 5 and stats["retransmits"] == 0
        assert stats["fast_retransmits"] == 0 and stats["cwnd_cuts"] == 0
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_pipelined_window_accepts_in_order(self):
        tb, _ = armed_testbed(reliability=sr_config(window=4))
        accepts = watch_accepts(tb)
        handles, _ = stream_puts(tb, 12, pipelined=True)
        tb.sim.run()
        assert accepts == list(range(12))
        assert all(h.delivered.ok for h in handles)


class TestSelectiveRecovery:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6),
           drop=st.sampled_from([0.1, 0.25, 0.4]))
    def test_property_exactly_once_in_order_under_drops(self, seed, drop):
        """The ISSUE-8 acceptance property: whatever the seeded drop
        plan does, every sequence is accepted exactly once, in order,
        and every payload lands intact."""
        tb, plan = armed_testbed(
            reliability=sr_config(window=4, max_retries=64),
            faults=FaultConfig(drop_prob=drop), rng=seed)
        accepts = watch_accepts(tb)
        handles, bufs = stream_puts(tb, 10, pipelined=True)
        tb.sim.run()
        assert accepts == list(range(10))
        assert all(h.delivered.ok for h in handles)
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()
        # (A dropped ACK recovers via a later cumulative ACK without any
        # data retransmit, so drops > 0 does not imply retransmits > 0.)

    def test_loss_exercises_sack_and_reorder_buffer(self):
        tb, plan = armed_testbed(
            reliability=sr_config(window=6, max_retries=64),
            faults=FaultConfig(drop_prob=0.3), rng=11)
        handles, bufs = stream_puts(tb, 24, pipelined=True)
        tb.sim.run()
        assert plan.stats["drops"] > 0
        tx = tb.nics["n0"].transport.stats
        rx = tb.nics["n1"].transport.stats
        assert tx["sacked"] > 0          # holes acknowledged out of order
        assert rx["rx_buffered"] > 0     # receiver parked out-of-order data
        assert all(h.delivered.ok for h in handles)
        for i, buf in enumerate(bufs):
            assert (buf.view(np.uint8) == (i + 1) & 0xFF).all()

    def test_single_hole_recovers_by_fast_retransmit_alone(self):
        # Drop exactly one data packet: go-back-N would timeout and
        # resend the whole outstanding window; selective repeat sees
        # SACK evidence above the hole and resends just that packet,
        # with no timeout round at all.
        from repro.net.fabric import NO_FAULT, FaultDecision

        class _DropOneData:
            def __init__(self, victim_seq):
                self.victim = victim_seq

            def on_transmit(self, msg, now):
                if (not msg.kind.is_control
                        and self.victim is not None
                        and msg.seq == self.victim):
                    self.victim = None
                    return FaultDecision(drop=True)
                return NO_FAULT

            def adjust_delivery(self, dst, t):
                return t

        tb, _ = armed_testbed(reliability=sr_config(window=6))
        tb.fabric.install_interposer(_DropOneData(2))
        handles, _ = stream_puts(tb, 6, pipelined=True)
        tb.sim.run()
        stats = tb.nics["n0"].transport.stats
        assert stats["fast_retransmits"] == 1  # the hole...
        assert stats["retransmits"] == 0       # ...not a window resend
        assert stats["timeouts"] == 0
        assert tb.nics["n1"].transport.stats["rx_buffered"] > 0
        assert all(h.delivered.ok for h in handles)

    def test_retry_budget_exhaustion_raises(self):
        tb, _ = armed_testbed(
            reliability=sr_config(max_retries=2),
            faults=FaultConfig(drop_prob=1.0), rng=0)
        src = tb.alloc_registered("n0", 64, "src")
        dst = tb.alloc_registered("n1", 64, "dst")
        h = tb.nics["n0"].post_put(src.addr(), 64, "n1", dst.addr())
        with pytest.raises(TransportError):
            tb.sim.run_until_event(h.delivered)
        assert tb.nics["n0"].transport.stats["give_ups"] == 1


class TestPacing:
    def test_cwnd_floor_and_ceiling_respected(self):
        cfg = sr_config(window=8, pacing=True, cwnd_floor=2, cwnd_ceiling=4)
        assert cfg.effective_cwnd_ceiling == 4
        tb, _ = armed_testbed(reliability=cfg,
                              faults=FaultConfig(drop_prob=0.3), rng=9)
        in_flight = []
        orig = tb.nics["n0"].transport._send_limit

        def spy(st):
            limit = orig(st)
            in_flight.append(limit)
            return limit

        tb.nics["n0"].transport._send_limit = spy
        handles, _ = stream_puts(tb, 16, pipelined=True)
        tb.sim.run()
        assert in_flight and all(2 <= limit <= 4 for limit in in_flight)
        assert tb.nics["n0"].transport.stats["cwnd_cuts"] > 0
        assert all(h.delivered.ok for h in handles)

    def test_pacing_off_uses_full_window(self):
        tb, _ = armed_testbed(reliability=sr_config(window=8, pacing=False))
        st0 = tb.nics["n0"].transport._tx_state("n1")
        assert tb.nics["n0"].transport._send_limit(st0) == 8


class TestBackoffJitter:
    def test_zero_jitter_creates_no_stream(self):
        tb, _ = armed_testbed()
        assert tb.nics["n0"].transport._backoff_rng is None

    def test_jitter_is_deterministic_per_seed(self):
        def timeline(reliability):
            tb, _ = armed_testbed(
                reliability=reliability,
                faults=FaultConfig(drop_prob=0.4), rng=5)
            handles, _ = stream_puts(tb, 8, pipelined=True)
            tb.sim.run()
            assert all(h.delivered.ok for h in handles)
            return tb.sim.now, dict(tb.nics["n0"].transport.stats)

        jittered = sr_config(max_retries=64, backoff_jitter_ns=1_000)
        assert timeline(jittered) == timeline(jittered)
        # And the jitter is real: it shifts the recovery timeline.
        assert timeline(jittered) != timeline(sr_config(max_retries=64))

    def test_jitter_applies_to_go_back_n_too(self):
        tb = build_nic_testbed()
        cfg = ReliabilityConfig(backoff_jitter_ns=500)
        for nic in tb.nics.values():
            nic.enable_reliability(cfg)
        assert isinstance(tb.nics["n0"].transport, ReliableTransport)
        assert tb.nics["n0"].transport._backoff_rng is not None
