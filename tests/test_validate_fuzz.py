"""Schedule fuzzer: determinism, replayability, campaign plumbing, CLI."""

import json

import pytest

import repro.validate.fuzz as fuzz_mod
from repro.__main__ import main as repro_main
from repro.validate import (
    FUZZ_WORKLOADS,
    ValidateExperiment,
    apply_knobs,
    fuzz_case,
    run_campaign,
)
from repro.config import default_config


class TestFuzzCase:
    def test_seed_maps_deterministically(self):
        for workload in FUZZ_WORKLOADS:
            assert fuzz_case(workload, 13) == fuzz_case(workload, 13)

    def test_different_seeds_differ(self):
        cases = {fuzz_case("microbench", s).tiebreak_seed for s in range(20)}
        assert len(cases) == 20

    def test_workloads_draw_independent_streams(self):
        assert (fuzz_case("microbench", 4).knobs
                != fuzz_case("jacobi", 4).knobs)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            fuzz_case("nope", 0)

    def test_knobs_overlay_config(self):
        case = fuzz_case("allreduce", 2)
        cfg = apply_knobs(default_config(), case.knobs)
        assert cfg.nic.doorbell_mmio_ns == case.knobs["doorbell_mmio_ns"]
        assert cfg.network.link_latency_ns == case.knobs["link_latency_ns"]
        assert cfg.kernel.launch_ns == case.knobs["launch_ns"]


class TestValidateExperiment:
    def test_single_case_runs_clean_and_lean(self):
        record = ValidateExperiment().run(
            params={"workload": "jacobi", "seed": 21})
        assert record.metrics["ok"] is True
        assert record.metrics["violation"] is None
        assert record.spans == ()  # campaign records drop the span table

    def test_replay_from_seed_alone_is_identical(self):
        """A failure report's (workload, seed) pair is the whole replay
        recipe: two independent executions agree on every metric."""
        params = {"workload": "allreduce", "seed": 17}
        a = ValidateExperiment().run(params=params)
        b = ValidateExperiment().run(params=params)
        assert a.metrics == b.metrics
        assert a.config_fingerprint == b.config_fingerprint


class TestCampaign:
    def test_small_campaign_all_clean(self):
        report = run_campaign(seeds=3, jobs=1)
        assert report.total == 3 * len(FUZZ_WORKLOADS)
        assert report.ok and not report.failures
        assert set(report.by_workload()) == set(FUZZ_WORKLOADS)

    def test_parallel_equals_serial(self):
        serial = run_campaign(workloads=("microbench",), seeds=6, jobs=1)
        parallel = run_campaign(workloads=("microbench",), seeds=6, jobs=3)
        assert ([r.metrics for r in serial.records]
                == [r.metrics for r in parallel.records])

    def test_seed_start_offsets_the_range(self):
        report = run_campaign(workloads=("microbench",), seeds=2,
                              seed_start=40, jobs=1)
        assert [r.metrics["seed"] for r in report.records] == [40, 41]

    def test_fail_fast_stops_scheduling_batches(self, monkeypatch):
        monkeypatch.setattr(fuzz_mod, "_app_ok", lambda metrics: False)
        report = run_campaign(workloads=("microbench",), seeds=30, jobs=1,
                              fail_fast=True)
        assert not report.ok
        assert report.total < 30  # stopped after the first failing batch

    def test_report_to_dict_is_json_safe(self):
        report = run_campaign(workloads=("microbench",), seeds=2, jobs=1)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is True and doc["total"] == 2
        assert doc["by_workload"]["microbench"] == {"passed": 2, "total": 2}
        assert all("knobs" in case for case in doc["cases"])

    def test_rejects_bad_seed_count(self):
        with pytest.raises(ValueError):
            run_campaign(seeds=0)


class TestValidateCli:
    def test_clean_campaign_exits_zero_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = repro_main(["validate", "--seeds", "2", "--workloads",
                         "microbench", "--json", str(out)])
        assert rc == 0
        assert "2/2 cases clean" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["ok"] is True and doc["total"] == 2

    def test_failures_exit_nonzero_with_replay_line(self, monkeypatch, capsys):
        monkeypatch.setattr(fuzz_mod, "_app_ok", lambda metrics: False)
        rc = repro_main(["validate", "--seeds", "1", "--workloads",
                         "microbench", "--jobs", "1"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL microbench seed=0" in out
        assert "replay: python -m repro validate" in out

    def test_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            repro_main(["validate", "--seeds", "0"])
        with pytest.raises(SystemExit):
            repro_main(["validate", "--workloads", "nope"])
