"""Runtime invariant monitors: clean runs stay silent, broken hardware
models are caught with structured violations.

The centerpiece is the injected-bug demonstration: an engine whose FIFO
tie-break is deliberately inverted (same-tick events pop LIFO) is caught
by :class:`MonotoneClockMonitor` on a real workload, and the fuzz
harness turns the violation into a structured, replayable case report.
"""

from types import SimpleNamespace

import pytest

from repro.net import Message
from repro.nic.triggered import NetworkOp, TriggerEntry
from repro.sim import Simulator
from repro.validate import (
    ExactlyOnceTriggerMonitor,
    FabricOrderMonitor,
    InvariantViolation,
    MonotoneClockMonitor,
    SendBufferSafetyMonitor,
    ValidateExperiment,
    attach_monitors,
    default_monitors,
)

from conftest import build_nic_testbed


def _sim_only_cluster(sim: Simulator):
    return SimpleNamespace(sim=sim, tracer=None)


# ---------------------------------------------------------------------------
# InvariantViolation structure
# ---------------------------------------------------------------------------

class TestInvariantViolation:
    def test_structured_fields_and_headline(self):
        v = InvariantViolation("event-clock", "clock ran backwards",
                               time=42, node="n0", details={"seq": 7},
                               context=("t=40 n0/nic rx",))
        assert "[event-clock]" in str(v)
        assert "t=42ns" in str(v) and "node=n0" in str(v)
        doc = v.to_dict()
        assert doc["invariant"] == "event-clock"
        assert doc["details"] == {"seq": 7}
        assert doc["context"] == ["t=40 n0/nic rx"]

    def test_report_includes_details_and_context(self):
        v = InvariantViolation("fabric-order", "boom",
                               details={"msg_id": 3}, context=("ctx-line",))
        text = v.report()
        assert "msg_id = 3" in text and "ctx-line" in text

    def test_non_scalar_details_are_repr_coerced(self):
        v = InvariantViolation("x", "y", details={"obj": object()})
        assert isinstance(v.to_dict()["details"]["obj"], str)


# ---------------------------------------------------------------------------
# Invariant 1: monotone clock + FIFO tie-break
# ---------------------------------------------------------------------------

def _lifo_schedule_event(self, event, delay, priority=10):
    """A deliberately broken scheduler: truthful ``_sched_seq`` stamps,
    but same-``(time, priority)`` events pop in LIFO order."""
    import heapq
    if delay < 0:
        raise RuntimeError("cannot schedule into the past")
    self._seq += 1
    event._sched_seq = self._seq
    heapq.heappush(self._heap,
                   (self._now + int(delay), priority, 0, -self._seq, event))


class TestMonotoneClockMonitor:
    def test_clean_engine_is_silent(self):
        sim = Simulator()
        monitor = MonotoneClockMonitor()
        monitor.attach(_sim_only_cluster(sim))
        order = []
        for i in range(5):
            sim.schedule(10, order.append, i)
        sim.schedule(5, order.append, "early")
        sim.run()
        monitor.finalize()
        assert order == ["early", 0, 1, 2, 3, 4]

    def test_injected_lifo_tiebreak_is_caught(self, monkeypatch):
        monkeypatch.setattr(Simulator, "_schedule_event", _lifo_schedule_event)
        sim = Simulator()
        monitor = MonotoneClockMonitor()
        monitor.attach(_sim_only_cluster(sim))
        for i in range(3):
            sim.schedule(10, lambda: None)
        with pytest.raises(InvariantViolation) as exc:
            sim.run()
        v = exc.value
        assert v.invariant == "event-clock"
        assert "FIFO tie-break violated" in v.message
        assert v.details["sched_seq"] < v.details["previous_seq"]

    def test_injected_bug_on_real_workload_yields_structured_report(
            self, monkeypatch):
        """The ISSUE acceptance demo: drop the engine's FIFO tie-break,
        run a real fuzz case, and the campaign record carries the
        structured violation instead of a crashed worker."""
        monkeypatch.setattr(Simulator, "_schedule_event", _lifo_schedule_event)
        record = ValidateExperiment().run(
            params={"workload": "microbench", "seed": 3})
        assert record.metrics["ok"] is False
        violation = record.metrics["violation"]
        assert violation is not None
        assert violation["invariant"] == "event-clock"
        assert violation["details"]["sched_seq"] < violation["details"]["previous_seq"]
        # The replay coordinates ride along with the failure.
        assert record.metrics["seed"] == 3
        assert record.metrics["workload"] == "microbench"


# ---------------------------------------------------------------------------
# Invariant 2: exactly-once triggering
# ---------------------------------------------------------------------------

class TestExactlyOnceTriggerMonitor:
    def _armed(self, testbed):
        monitor = ExactlyOnceTriggerMonitor()
        monitor.attach(testbed)
        return monitor, testbed.nics["n0"].trigger_list

    def _register_put(self, testbed, tag, threshold):
        send = testbed.alloc_registered("n0", 64, f"send{tag}")
        recv = testbed.alloc_registered("n1", 64, f"recv{tag}")
        return testbed.nics["n0"].register_triggered_put(
            tag=tag, threshold=threshold, local_addr=send.addr(),
            nbytes=64, target="n1", remote_addr=recv.addr())

    def test_normal_trigger_path_is_silent(self):
        testbed = build_nic_testbed()
        monitor, tl = self._armed(testbed)
        self._register_put(testbed, tag=9, threshold=2)
        tl.trigger(9)
        tl.trigger(9)
        testbed.sim.run()
        monitor.finalize()
        assert tl.stats["fired"] == 1

    def test_double_fire_is_caught(self):
        testbed = build_nic_testbed()
        monitor, tl = self._armed(testbed)
        entry = self._register_put(testbed, tag=9, threshold=1)
        tl.trigger(9)
        entry.fired = False  # simulate a list that lost the fired mark
        with pytest.raises(InvariantViolation) as exc:
            tl._fire(entry)
        assert exc.value.invariant == "trigger-exactly-once"
        assert "more than once" in exc.value.message

    def test_below_threshold_fire_is_caught(self):
        testbed = build_nic_testbed()
        monitor, tl = self._armed(testbed)
        op = NetworkOp(kind="put", local_addr=0, nbytes=0, target="n1")
        entry = tl.register(op, tag=5, threshold=3)
        with pytest.raises(InvariantViolation) as exc:
            tl._fire(entry)
        assert "below threshold" in exc.value.message

    def test_met_threshold_that_never_fired_is_caught_at_finalize(self):
        testbed = build_nic_testbed()
        monitor, tl = self._armed(testbed)
        op = NetworkOp(kind="put", local_addr=0, nbytes=0, target="n1")
        stuck = TriggerEntry(tag=77, op=op, threshold=1, counter=1)
        tl.lookup.insert(stuck)  # bypasses the firing path entirely
        with pytest.raises(InvariantViolation) as exc:
            monitor.finalize()
        assert "never fired" in exc.value.message


# ---------------------------------------------------------------------------
# Invariant 6: fabric ordering
# ---------------------------------------------------------------------------

class TestFabricOrderMonitor:
    def _armed(self):
        testbed = build_nic_testbed()
        monitor = FabricOrderMonitor()
        monitor.attach(testbed)
        return testbed, monitor

    def test_real_traffic_is_silent(self):
        testbed, monitor = self._armed()
        src, dst = testbed.nics["n0"], testbed.nics["n1"]
        send = testbed.alloc_registered("n0", 64, "send")
        recv = testbed.alloc_registered("n1", 64, "recv")
        for _ in range(4):
            src.post_put(send.addr(), 64, "n1", recv.addr())
        testbed.sim.run()
        monitor.finalize()

    def test_fifo_inversion_is_caught(self):
        testbed, monitor = self._armed()
        ser = testbed.fabric.net.serialization_ns(64)
        lat = testbed.fabric.topology.path_latency_ns("n0", "n1")
        msg1 = Message(src="n0", dst="n1", nbytes=64)
        msg2 = Message(src="n0", dst="n1", nbytes=64)
        monitor._on_transmit(msg1, 0, ser, 5000)
        with pytest.raises(InvariantViolation) as exc:
            monitor._on_transmit(msg2, 100, 100 + ser, 100 + ser + lat)
        assert exc.value.invariant == "fabric-order"
        assert "FIFO violated" in exc.value.message

    def test_faster_than_physics_delivery_is_caught(self):
        testbed, monitor = self._armed()
        msg = Message(src="n0", dst="n1", nbytes=4096)
        ser = testbed.fabric.net.serialization_ns(4096)
        with pytest.raises(InvariantViolation) as exc:
            monitor._on_transmit(msg, 0, ser, 1)  # beats ser + path latency
        assert "physical floor" in exc.value.message

    def test_egress_overlap_is_caught(self):
        testbed, monitor = self._armed()
        ser = testbed.fabric.net.serialization_ns(4096)
        lat = testbed.fabric.topology.path_latency_ns("n0", "n1")
        msg1 = Message(src="n0", dst="n1", nbytes=4096)
        msg2 = Message(src="n0", dst="n1", nbytes=4096)
        monitor._on_transmit(msg1, 0, ser, ser + lat)
        with pytest.raises(InvariantViolation) as exc:
            # Second message's wire window starts inside the first's.
            monitor._on_transmit(msg2, 1, ser + 1, 2 * ser + lat)
        assert "serialization overlap" in exc.value.message


# ---------------------------------------------------------------------------
# Invariant 7: send-buffer completion safety
# ---------------------------------------------------------------------------

class TestSendBufferSafetyMonitor:
    def _handle(self, hid=1, op_id=5):
        return SimpleNamespace(handle_id=hid, op=SimpleNamespace(op_id=op_id))

    def test_read_then_complete_is_silent(self):
        monitor = SendBufferSafetyMonitor()
        h = self._handle()
        monitor._observe("n0", "send-dma-read", h, 100)
        monitor._observe("n0", "local-complete", h, 200)
        monitor.finalize()

    def test_complete_before_read_is_caught(self):
        monitor = SendBufferSafetyMonitor()
        with pytest.raises(InvariantViolation) as exc:
            monitor._observe("n0", "local-complete", self._handle(), 100)
        assert exc.value.invariant == "completion-safety"
        assert "before the NIC captured" in exc.value.message

    def test_read_after_complete_is_caught(self):
        monitor = SendBufferSafetyMonitor()
        h = self._handle()
        monitor._observe("n0", "send-dma-read", h, 100)
        monitor._observe("n0", "local-complete", h, 200)
        with pytest.raises(InvariantViolation) as exc:
            monitor._observe("n0", "send-dma-read", h, 300)
        assert "reusable" in exc.value.message


# ---------------------------------------------------------------------------
# Attachment plumbing
# ---------------------------------------------------------------------------

class TestAttachment:
    def test_default_monitors_cover_all_invariants(self):
        names = {m.invariant for m in default_monitors()}
        assert names == {"event-clock", "trigger-exactly-once",
                         "fabric-order", "completion-safety"}

    def test_attach_monitors_on_nic_testbed(self):
        testbed = build_nic_testbed()
        monitors = attach_monitors(testbed)
        assert len(monitors) == 4
        assert testbed.fabric.probes and testbed.sim._step_probes
        for nic in testbed.nics.values():
            assert nic.trigger_list.observers and nic.probes

    def test_monitored_put_roundtrip_is_clean(self):
        testbed = build_nic_testbed()
        monitors = attach_monitors(testbed)
        send = testbed.alloc_registered("n0", 64, "send")
        recv = testbed.alloc_registered("n1", 64, "recv")
        testbed.nics["n0"].post_put(send.addr(), 64, "n1", recv.addr())
        testbed.sim.run()
        for monitor in monitors:
            monitor.finalize()
