"""Property-based tests for DESIGN.md §6 invariants 1, 2 and 6.

Hypothesis generates event schedules, trigger interleavings and traffic
plans; the properties assert the invariants hold for *every* generated
instance -- both directly (explicit order checks) and through the
:mod:`repro.validate` monitors, which must stay silent on a correct
implementation under any schedule, including tie-break-fuzzed ones.

The ``ci`` profile in ``conftest.py`` derandomizes hypothesis (fixed
seed), so CI failures always reproduce locally.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.validate import (
    ExactlyOnceTriggerMonitor,
    FabricOrderMonitor,
    MonotoneClockMonitor,
    attach_monitors,
    fuzz_case,
)

from conftest import build_nic_testbed


# ---------------------------------------------------------------------------
# Invariant 1: the engine pops events in (time, priority, FIFO) order
# ---------------------------------------------------------------------------

schedule_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # delay
        st.sampled_from([0, 10]),                # priority (urgent / normal)
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(plan=schedule_plan)
def test_property_engine_pops_in_time_priority_fifo_order(plan):
    sim = Simulator()
    monitor = MonotoneClockMonitor()
    monitor.attach(SimpleNamespace(sim=sim, tracer=None))
    pops = []
    for i, (delay, priority) in enumerate(plan):
        sim.schedule(delay, pops.append, (delay, priority, i),
                     priority=priority)
    sim.run()  # MonotoneClockMonitor raises on any misordering
    # Ground-truth check, independent of the monitor: stable sort by
    # (time, priority) is exactly FIFO among ties.
    assert pops == sorted(pops, key=lambda p: (p[0], p[1]))
    assert len(pops) == len(plan)


@settings(max_examples=40, deadline=None)
@given(plan=schedule_plan, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_tiebreak_fuzzing_only_permutes_ties(plan, seed):
    """Seeded tie-breaks must reorder only same-(time, priority) events:
    the multiset per slot is unchanged and the monitor stays silent."""
    def run(tiebreaks):
        sim = Simulator()
        if tiebreaks:
            sim.seed_tiebreaks(seed)
        monitor = MonotoneClockMonitor()
        monitor.attach(SimpleNamespace(sim=sim, tracer=None))
        pops = []
        for i, (delay, priority) in enumerate(plan):
            sim.schedule(delay, pops.append, (delay, priority, i),
                         priority=priority)
        sim.run()
        return pops

    fifo, fuzzed = run(False), run(True)
    assert sorted(fifo) == sorted(fuzzed)
    slots_fifo = [(t, p) for t, p, _ in fifo]
    slots_fuzzed = [(t, p) for t, p, _ in fuzzed]
    assert slots_fifo == slots_fuzzed  # only intra-slot order may change


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_same_seed_same_schedule(seed):
    def run():
        sim = Simulator()
        sim.seed_tiebreaks(seed)
        pops = []
        for i in range(12):
            sim.schedule(7, pops.append, i)
        sim.run()
        return pops

    assert run() == run()


# ---------------------------------------------------------------------------
# Invariant 2: triggered ops fire iff counter >= threshold, exactly once
# ---------------------------------------------------------------------------

# An interleaving over a small tag space: registrations (put or get, with
# a threshold) and GPU trigger writes, each at a generated time.  Tags
# with no registration exercise the §3.2 placeholder path; triggers that
# land before their registration exercise placeholder adoption.
trigger_plan = st.lists(
    st.one_of(
        st.tuples(st.just("register"),
                  st.integers(min_value=0, max_value=4),    # tag
                  st.integers(min_value=1, max_value=4),    # threshold
                  st.integers(min_value=0, max_value=3000),  # time
                  st.sampled_from(["put", "get"])),
        st.tuples(st.just("trigger"),
                  st.integers(min_value=0, max_value=5),    # tag (incl. 5:
                  st.integers(min_value=1, max_value=1),    # never registered)
                  st.integers(min_value=0, max_value=3000),
                  st.just("-")),
    ),
    min_size=1, max_size=25,
)


@settings(max_examples=50, deadline=None)
@given(plan=trigger_plan, tiebreak_seed=st.integers(0, 2**31 - 1))
def test_property_triggered_ops_fire_iff_threshold_exactly_once(
        plan, tiebreak_seed):
    testbed = build_nic_testbed()
    testbed.sim.seed_tiebreaks(tiebreak_seed)
    monitor = ExactlyOnceTriggerMonitor()
    monitor.attach(testbed)
    nic = testbed.nics["n0"]
    registered = {}

    def register(tag, threshold, kind):
        if tag in registered:  # one registration per tag (list semantics)
            return
        local = testbed.alloc_registered("n0", 32, f"loc{tag}")
        remote = testbed.alloc_registered("n1", 32, f"rem{tag}")
        if kind == "put":
            entry = nic.register_triggered_put(
                tag=tag, threshold=threshold, local_addr=local.addr(),
                nbytes=32, target="n1", remote_addr=remote.addr())
        else:
            entry = nic.register_triggered_get(
                tag=tag, threshold=threshold, local_addr=local.addr(),
                nbytes=32, target="n1", remote_addr=remote.addr())
        registered[tag] = entry

    for op, tag, threshold, time, kind in plan:
        if op == "register":
            testbed.sim.schedule(time, register, tag, threshold, kind)
        else:
            # The real GPU path: an MMIO store into the trigger address.
            testbed.sim.schedule(
                time, nic.mmio_write, nic.trigger_address, tag)
    testbed.sim.run()
    monitor.finalize()  # raises if exactly-once / iff-threshold broke

    trigger_list = nic.trigger_list
    for tag, entry in registered.items():
        assert entry.fired == (entry.counter >= entry.threshold), (
            tag, entry.counter, entry.threshold)
    fired_entries = [e for e in trigger_list.lookup if e.fired]
    assert len(fired_entries) == trigger_list.stats["fired"]
    for entry in trigger_list.lookup:  # placeholders never fire
        if entry.is_placeholder:
            assert not entry.fired


# ---------------------------------------------------------------------------
# Invariant 6: fabric FIFO / bandwidth serialization
# ---------------------------------------------------------------------------

traffic_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),       # dst node (of n1, n2)
        st.integers(min_value=1, max_value=1 << 14),  # nbytes
        st.integers(min_value=0, max_value=4000),    # post time
    ),
    min_size=1, max_size=20,
)


@settings(max_examples=50, deadline=None)
@given(plan=traffic_plan, tiebreak_seed=st.integers(0, 2**31 - 1))
def test_property_fabric_monitor_silent_on_legal_traffic(plan, tiebreak_seed):
    """The fabric keeps per-pair FIFO and serialization under arbitrary
    posting schedules *and* fuzzed same-tick orderings -- the monitor
    must never report a false positive."""
    testbed = build_nic_testbed(n_nodes=3)
    testbed.sim.seed_tiebreaks(tiebreak_seed)
    monitor = FabricOrderMonitor()
    monitor.attach(testbed)
    nic = testbed.nics["n0"]
    bufs = {}
    for i, (dst, nbytes, time) in enumerate(plan):
        send = testbed.alloc_registered("n0", nbytes, f"s{i}")
        recv = testbed.alloc_registered(f"n{dst + 1}", nbytes, f"r{i}")
        bufs[i] = (send, recv)
        testbed.sim.schedule(time, nic.post_put, send.addr(), nbytes,
                             f"n{dst + 1}", recv.addr())
    testbed.sim.run()
    monitor.finalize()
    assert testbed.fabric.stats["messages"] >= len(plan)


# ---------------------------------------------------------------------------
# The fuzzer's seed map itself
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       workload=st.sampled_from(["microbench", "jacobi", "allreduce"]))
def test_property_fuzz_case_map_is_pure(seed, workload):
    a, b = fuzz_case(workload, seed), fuzz_case(workload, seed)
    assert a == b
    assert set(a.knobs) == {
        "doorbell_mmio_ns", "command_process_ns", "dma_setup_ns",
        "completion_write_ns", "link_latency_ns", "switch_latency_ns",
        "launch_ns", "teardown_ns"}
    assert all(v > 0 for v in a.knobs.values())
